"""Single-writer shard executors behind a submit/await mailbox.

Each :class:`ShardExecutor` is one worker thread draining a FIFO mailbox of
submitted callables.  The pool assigns every storage shard to exactly one
executor, so all access to a shard's environment that goes through the pool
is serialized on a single thread — the shard needs no internal locks, exactly
like a single-writer event loop per partition.

``ExecutorPool(shard_count, threads=1)`` (or fewer shards than threads) keeps
a degenerate **inline** mode: ``submit`` runs the callable immediately on the
calling thread and returns an already-completed future.  That mode is the
serial engine — no threads are created, no queues exist, and the instruction
stream is identical to calling the function directly.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import Any, Callable, Iterable

from repro.errors import (
    ExecutorClosedError,
    ShardTimeoutError,
    StorageError,
)
from repro.obs.trace import bind_current, tracing_enabled


class ShardFuture:
    """Result slot for one submitted task, with opt-in work stealing.

    A future created for a queued task carries the callable and a claim lock;
    whichever thread wins the claim — the executor's worker, or the awaiting
    caller via ``result(steal=True)`` — runs the task exactly once.  Stealing
    matters on machines where cores are scarce: instead of sleeping until the
    scheduler hands the worker thread a slice, the caller that needs the
    block right now just computes it (the callable carries its own shard
    latch, so the single-access discipline is preserved either way).
    """

    __slots__ = ("_event", "_result", "_exception", "_fn", "_claim", "_steal_note")

    def __init__(self, fn: "Callable[[], Any] | None" = None) -> None:
        self._event = threading.Event()
        self._result: Any = None
        self._exception: BaseException | None = None
        self._fn = fn
        self._claim = threading.Lock() if fn is not None else None
        #: Optional observability callback fired when a caller steals the
        #: task (set by the pool when a metrics registry is attached).
        self._steal_note: "Callable[[], None] | None" = None

    @classmethod
    def completed(cls, result: Any) -> "ShardFuture":
        """An already-resolved future (the inline execution mode)."""
        future = cls()
        future._result = result
        future._event.set()
        return future

    @classmethod
    def failed(cls, exception: BaseException) -> "ShardFuture":
        """An already-failed future (inline execution that raised)."""
        future = cls()
        future._exception = exception
        future._event.set()
        return future

    def _resolve(self, result: Any) -> None:
        self._result = result
        self._event.set()

    def _fail(self, exception: BaseException) -> None:
        self._exception = exception
        self._event.set()

    def _try_claim(self) -> bool:
        """Atomically claim the right to run the task (at most one winner)."""
        return self._claim is not None and self._claim.acquire(blocking=False)

    def _run_claimed(self) -> None:
        """Execute the claimed task (claim must have been won first)."""
        assert self._fn is not None
        try:
            self._resolve(self._fn())
        except BaseException as exc:  # propagate to the awaiting caller
            self._fail(exc)

    def cancel(self) -> bool:
        """Win the claim so the task never runs; resolve to ``None``.

        Returns ``False`` when a worker (or a stealing caller) already owns
        the task — the caller must then await it instead.  Used by the stream
        pumps to drop a speculative prefetch block after early termination
        without anyone paying to compute it.
        """
        if self._try_claim():
            self._resolve(None)
            return True
        return False

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None, steal: bool = False) -> Any:
        """Block until the task finishes; re-raise its exception if it failed.

        With ``steal=True`` and the task still unclaimed, run it on the
        calling thread instead of waiting for the worker.
        """
        if steal and not self._event.is_set() and self._try_claim():
            if self._steal_note is not None:
                self._steal_note()
            self._run_claimed()
        if not self._event.wait(timeout):
            raise ShardTimeoutError("shard task did not complete in time")
        if self._exception is not None:
            raise self._exception
        return self._result


#: Mailbox sentinel asking a worker to exit after draining earlier tasks.
_SHUTDOWN = object()


class ShardExecutor:
    """One worker thread owning the shards assigned to it.

    Tasks submitted to the same executor run strictly in submission order;
    tasks for a given shard therefore never overlap (the single-writer
    guarantee).  The executor is oblivious to what the callables do — the
    pool's shard→executor mapping is what scopes them to shard state.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._mailbox: "queue.SimpleQueue[ShardFuture | Any]" = queue.SimpleQueue()
        self._closed = False
        self._dead = False
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def submit(self, fn: Callable[[], Any]) -> ShardFuture:
        """Enqueue a callable; returns a future resolving to its return value."""
        if self._closed or self._dead:
            state = "dead" if self._dead else "closed"
            raise ExecutorClosedError(f"executor {self.name} is {state}")
        future = ShardFuture(fn)
        self._mailbox.put(future)
        return future

    def close(self) -> None:
        """Drain the mailbox and join the worker thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._mailbox.put(_SHUTDOWN)
        self._thread.join()

    def kill(self) -> None:
        """Chaos hook: simulate the worker dying (idempotent).

        The worker finishes tasks already in its mailbox — they were claimed
        work, and abandoning claimed futures would hang their awaiters — then
        exits; further submissions raise
        :class:`~repro.errors.ExecutorClosedError` until the pool revives the
        executor.
        """
        if self._closed or self._dead:
            return
        self._dead = True
        self._mailbox.put(_SHUTDOWN)
        self._thread.join()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def dead(self) -> bool:
        """Whether :meth:`kill` stopped the worker (pending pool revival)."""
        return self._dead

    def _run(self) -> None:
        while True:
            item = self._mailbox.get()
            if item is _SHUTDOWN:
                return
            if item._try_claim():
                item._run_claimed()
            # else: the awaiting caller stole and ran the task already.


class ExecutorPool:
    """Shard→executor assignment plus scatter/await helpers.

    Parameters
    ----------
    shard_count:
        Number of storage shards served.  Shards are assigned to executors
        round-robin; with at least as many threads as shards each shard owns
        a dedicated worker.
    threads:
        Worker-thread budget.  ``threads <= 1`` creates **no** threads: every
        ``submit`` executes inline on the caller, which is the serial engine.
    scatter:
        Whether readers should *eagerly* hand scan blocks to the worker
        threads (true parallel decode) or keep them as lazily-computed local
        thunks (the workers only back the write fan-out).  Defaults to
        "are there physical cores for the workers to run on": on a
        single-core host an executor hop can never overlap with anything, so
        eager scatter would pay queue/wakeup latency for nothing.
    """

    def __init__(self, shard_count: int, threads: int = 1,
                 scatter: "bool | None" = None) -> None:
        if shard_count < 1:
            raise StorageError(f"shard_count must be at least 1, got {shard_count}")
        self.shard_count = shard_count
        self.threads = max(1, int(threads))
        if scatter is None:
            scatter = (os.cpu_count() or 1) > 1
        self.scatter = bool(scatter)
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` (duck-typed)
        #: attached by the router; when set, submissions/steals/revivals feed
        #: ``exec.*`` counters.
        self.metrics = None
        self._closed = False
        if self.threads <= 1:
            self._executors: list[ShardExecutor] = []
        else:
            worker_count = min(self.threads, shard_count)
            self._executors = [
                ShardExecutor(name=f"repro-shard-exec-{index}")
                for index in range(worker_count)
            ]

    @property
    def parallel(self) -> bool:
        """Whether submissions actually run on worker threads."""
        return bool(self._executors)

    @property
    def worker_count(self) -> int:
        return len(self._executors)

    def executor_for(self, shard: int) -> "ShardExecutor | None":
        """The executor owning ``shard`` (``None`` in inline mode)."""
        if not self._executors:
            return None
        return self._executors[shard % len(self._executors)]

    def submit(self, shard: int, fn: Callable[[], Any]) -> ShardFuture:
        """Run ``fn`` on the shard's executor (or inline when not parallel).

        Executor failures are tagged with the shard they were submitted for,
        so the router can attribute them to a failure domain.
        """
        executor = self.executor_for(shard)
        if executor is None:
            # Inline mode runs on the calling thread, where any open trace
            # span is already current — no context binding needed.
            try:
                return ShardFuture.completed(fn())
            except BaseException as exc:
                return ShardFuture.failed(exc)
        if tracing_enabled():
            # Carry the submitting thread's current span into the task, so
            # spans the task opens land under the query/window that caused it
            # — on the worker thread, or on whichever caller steals the task
            # (the binding travels inside the submitted closure).
            fn = bind_current(fn)
        metrics = self.metrics
        try:
            future = executor.submit(fn)
        except ExecutorClosedError as exc:
            if exc.shard is None:
                exc.shard = shard
            raise
        if metrics is not None:
            metrics.inc("exec.submitted", shard=shard)
            future._steal_note = lambda: metrics.inc("exec.steals", shard=shard)
        return future

    def kill_executor(self, shard: int) -> bool:
        """Chaos hook: kill the executor owning ``shard`` (inline: ``False``)."""
        executor = self.executor_for(shard)
        if executor is None:
            return False
        executor.kill()
        return True

    def revive(self, shard: int) -> bool:
        """Replace a dead executor with a fresh worker (shard re-admission).

        Returns whether a replacement was made; a live executor (or the
        inline pool) is left untouched.
        """
        if not self._executors or self._closed:
            return False
        index = shard % len(self._executors)
        executor = self._executors[index]
        if not executor.dead:
            return False
        self._executors[index] = ShardExecutor(name=executor.name)
        if self.metrics is not None:
            self.metrics.inc("exec.revived", shard=shard)
        return True

    def run_on(self, shard: int, fn: Callable[[], Any]) -> Any:
        """Submit and await one task."""
        return self.submit(shard, fn).result()

    def map_shards(self, tasks: "Iterable[tuple[int, Callable[[], Any]]]") -> list[Any]:
        """Scatter ``(shard, fn)`` tasks and gather every result.

        All futures are awaited even when one fails, so the shards are
        guaranteed quiescent when this returns; the first failure is then
        re-raised in task order.
        """
        futures = [self.submit(shard, fn) for shard, fn in tasks]
        results: list[Any] = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                # steal=True: on a saturated host the gathering thread works
                # through unclaimed sub-batches itself instead of sleeping.
                results.append(future.result(steal=True))
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def barrier(self) -> None:
        """Wait until every live executor has drained its mailbox."""
        for executor in self._executors:
            if not executor.dead:
                executor.submit(lambda: None).result()

    def close(self) -> None:
        """Join every worker thread (idempotent; inline mode is a no-op)."""
        if self._closed:
            return
        self._closed = True
        for executor in self._executors:
            executor.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
