"""Concurrent execution subsystem for the sharded storage engine.

The paper's premise is serving top-k queries *while* score updates stream in;
PR 3 partitioned the term space into independent storage environments and
PR 4 made them durable, but execution stayed single-threaded.  This package
adds the execution layer:

* :mod:`repro.exec.executor` — :class:`ShardExecutor` worker threads (one
  single-writer mailbox per shard) behind an :class:`ExecutorPool` whose
  ``threads <= 1`` configuration degenerates to inline serial execution.
* :mod:`repro.exec.locks` — the :class:`ReadWriteLock` the router uses to run
  queries concurrently while update windows execute exclusively.
* :mod:`repro.exec.fanout` — :class:`StreamPump`, which advances a per-term
  scan iterator in blocks *on the owning shard's executor*, so parallel query
  fan-out keeps every shard's state accessed from a single thread at a time.

The subsystem is layered strictly on top of the storage engine: with one
thread nothing here is ever invoked and the engine is byte-for-byte the
serial engine; with more threads, contents and top-k answers remain identical
while I/O accounting attribution becomes approximate (see the "Concurrent
execution" section of ARCHITECTURE.md for the exact contract).
"""

from repro.exec.executor import ExecutorPool, ShardExecutor, ShardFuture
from repro.exec.fanout import StreamPump, pump_plans
from repro.exec.locks import ReadWriteLock

__all__ = [
    "ExecutorPool",
    "ShardExecutor",
    "ShardFuture",
    "StreamPump",
    "pump_plans",
    "ReadWriteLock",
]
