"""Reader-writer coordination for the concurrent router.

The router's concurrency model is deliberately coarse: top-k queries run
concurrently with each other (shared mode), while anything that mutates index
state — update windows, document changes, builds, checkpoints — runs
exclusively (writer mode).  Inside an exclusive section the work still fans
out *across* shards through the executor pool; the lock only serializes
writers against readers and each other.

The implementation is writer-preferring: once a writer is waiting, new
readers queue behind it, so a stream of queries cannot starve the update
path.  This matters for the service workload, where closed-loop clients mix
both kinds of traffic — and the queueing it induces is exactly what lets the
router coalesce waiting update windows into one combined batch (see
``IndexRouter``'s write combining).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """A writer-preferring readers-writer lock built on one condition variable."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- reader side -----------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- writer side -----------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1

    def try_acquire_write(self) -> bool:
        """Take the writer lock only if it is free right now (never blocks)."""
        with self._cond:
            if self._writer_active or self._active_readers:
                return False
            self._writer_active = True
            return True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
