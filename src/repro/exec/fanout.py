"""Block-prefetching stream pumps for parallel query fan-out.

A query's per-term scan is a lazy iterator whose every step touches the
owning shard's buffer pool.  Under the single-writer executor model that
iterator must only ever advance on the shard's executor thread, while the
query's k-way merge runs on the coordinating (client) thread.

:class:`StreamPump` bridges the two: the scan iterator is *created and
advanced exclusively on the shard executor*, in blocks of ``block_size``
postings, and the pump exposes a plain iterator to the merge.  Each delivered
block immediately schedules the next one, so the executor decodes ahead while
the coordinator merges (double buffering).  Early termination simply stops
pulling: at most one speculative block per term is wasted, which bounds the
over-scan a parallel query can perform beyond the serial engine's stopping
point.
"""

from __future__ import annotations

import threading
from itertools import islice
from typing import Any, Callable, Iterator, Sequence

from repro.exec.executor import ExecutorPool, ShardFuture
from repro.obs.trace import span

#: Default cap on postings materialized per executor round trip.  Blocks
#: start small and double per pull (see ``StreamPump``), so short
#: early-terminating scans decode little past their stopping point while
#: long full scans still amortize the mailbox hop.
DEFAULT_BLOCK_SIZE = 512

#: First-block size: what a top-k scan typically needs before stopping.
INITIAL_BLOCK_SIZE = 32


class StreamPump:
    """Iterate a shard-owned stream from another thread, block at a time.

    Parameters
    ----------
    pool:
        Executor pool; the pump degenerates to plain inline iteration when the
        pool is not parallel.
    shard:
        Shard whose executor must advance the stream.
    plan:
        Zero-argument callable building the stream iterator.  It is invoked on
        the executor (stream *construction* may already read storage).
    latch:
        Optional lock held while the executor advances the stream, so brief
        point reads from coordinator threads (score lookups during the merge)
        serialize against block decoding on the same shard.
    block_size:
        Maximum postings per block.  Pulls start at ``initial_block`` and
        double per round trip: early-terminating scans (the whole point of
        the paper's methods) waste at most one small speculative block, while
        full scans quickly reach the cap and amortize the executor hop.
    initial_block:
        First-pull size.
    label:
        Optional stream label (the owning term) recorded on the pump's
        ``shard.scan``/``scan.block`` spans, so slow-query trees and
        EXPLAIN ANALYZE traces attribute scan time per term.
    """

    def __init__(self, pool: ExecutorPool, shard: int,
                 plan: Callable[[], Iterator[Any]],
                 latch: "threading.RLock | None" = None,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 initial_block: int = INITIAL_BLOCK_SIZE,
                 label: "str | None" = None) -> None:
        self._pool = pool
        self._shard = shard
        self._plan = plan
        self._latch = latch
        self._label = label
        self._max_block = max(1, int(block_size))
        self._next_block = min(max(1, int(initial_block)), self._max_block)
        self._stream: Iterator[Any] | None = None
        self._pulled = 0
        self._pending: "ShardFuture | Callable[[], list] | None" = (
            self._dispatch(self._open_and_pull)
        )
        self._closed = False

    def _dispatch(self, fn: "Callable[[], list]"):
        """Scatter to the shard executor, or keep a lazy thunk when saturated.

        With ``pool.scatter`` (spare cores exist) the block is computed
        eagerly on the owning shard's executor, overlapping with the merge
        and with other shards' scans.  Without it the thunk runs on the
        consuming thread at the moment the block is needed — same latch,
        same single-access discipline, zero queue hops.
        """
        if self._pool.scatter:
            return self._pool.submit(self._shard, fn)
        return fn

    # -- executor-side ---------------------------------------------------------

    def _take_block(self) -> list:
        count = self._next_block
        self._next_block = min(self._max_block, count * 2)
        block = list(islice(self._stream, count))
        self._pulled = count
        return block

    def _open_and_pull(self) -> list:
        # The spans here record under the submitting query's tree: the pool
        # bound the query's current span into this callable at dispatch time
        # (or, with lazy thunks, the merge thread's own span is current).
        with span("shard.scan", shard=self._shard) as node:
            if self._latch is not None:
                with self._latch:
                    self._stream = self._plan()
                    block = self._take_block()
            else:
                self._stream = self._plan()
                block = self._take_block()
            if node is not None:
                node.tags["postings"] = len(block)
                if self._label is not None:
                    node.tags["term"] = self._label
            return block

    def _pull(self) -> list:
        assert self._stream is not None
        with span("scan.block", shard=self._shard) as node:
            if self._latch is not None:
                with self._latch:
                    block = self._take_block()
            else:
                block = self._take_block()
            if node is not None:
                node.tags["postings"] = len(block)
                if self._label is not None:
                    node.tags["term"] = self._label
            return block

    # -- coordinator-side ------------------------------------------------------

    def next_block(self) -> list:
        """The next materialized block (empty when the stream is exhausted)."""
        if self._pending is None:
            return []
        if callable(self._pending):
            block = self._pending()
        else:
            # steal=True: even with eager scatter, if no worker started the
            # block the merge thread computes it instead of sleeping.
            block = self._pending.result(steal=True)
        if block and len(block) == self._pulled and not self._closed:
            # The stream may have more: prefetch the next (doubled) block
            # before the merge consumes this one.
            self._pending = self._dispatch(self._pull)
        else:
            self._pending = None
        return block

    def stream(self) -> Iterator[Any]:
        """A plain generator over the pumped postings.

        The k-way merge consumes millions of postings; routing each one
        through a Python-level ``__next__`` would dominate the query, so the
        per-item path is a C-speed ``yield from`` over each block and the
        Python-level pump logic runs once per *block*.
        """
        while True:
            block = self.next_block()
            if not block:
                return
            yield from block

    def __iter__(self) -> Iterator[Any]:
        return self.stream()

    def close(self) -> None:
        """Stop prefetching.

        A speculative block nobody has started computing is *cancelled* —
        after early termination its work would be pure waste — and one a
        worker is already running is awaited so the shard is quiescent when
        the query's read lock is released.
        """
        if self._closed:
            return
        self._closed = True
        pending, self._pending = self._pending, None
        if pending is None or callable(pending):
            return  # a lazy thunk simply never runs
        if not pending.cancel():
            try:
                pending.result()
            except BaseException:
                pass  # the query already stopped consuming; nothing to report


def pump_plans(pool: ExecutorPool,
               plans: "Sequence[tuple]",
               latches: "Sequence[threading.RLock] | None" = None,
               block_size: int = DEFAULT_BLOCK_SIZE,
               initial_block: int = INITIAL_BLOCK_SIZE) -> list[StreamPump]:
    """Wrap ``(shard, plan)`` — or ``(shard, plan, label)`` — tuples in pumps.

    One pump per term stream; the optional third element labels the pump's
    spans with the owning term.
    """
    pumps = []
    for entry in plans:
        shard, plan = entry[0], entry[1]
        label = entry[2] if len(entry) > 2 else None
        pumps.append(StreamPump(
            pool, shard, plan,
            latch=latches[shard] if latches is not None else None,
            block_size=block_size,
            initial_block=initial_block,
            label=label,
        ))
    return pumps
