"""Paged storage engine used as a BerkeleyDB substitute.

The ICDE 2005 SVR paper implements its inverted lists on top of BerkeleyDB:
long inverted lists are stored as binary objects read a page at a time, short
lists and the Score/ListScore/ListChunk tables live in B+-trees that stay
cache-resident, and queries run against a cold cache for the long lists.

This package reproduces exactly those mechanics in pure Python so the paper's
query/update trade-offs can be measured:

* :class:`~repro.storage.disk.SimulatedDisk` — a page store that accounts for
  every read and write and exposes a configurable cost model.
* :class:`~repro.storage.buffer_pool.BufferPool` — an LRU cache of pages with
  hit/miss statistics.
* :class:`~repro.storage.btree.BPlusTree` — an ordered map with range scans,
  used for primary keys, secondary indexes, short lists and lookup tables.
* :class:`~repro.storage.heap_file.HeapFile` — append-only segments holding
  immutable serialized long inverted lists.
* :class:`~repro.storage.kvstore.KVStore` — a thin BerkeleyDB-flavoured facade
  over a B+-tree.
* :class:`~repro.storage.environment.StorageEnvironment` — a named collection
  of stores sharing one disk + buffer pool, with global I/O statistics.
* :class:`~repro.storage.sharding.ShardedEnvironment` — the term space
  partitioned across N such environments (one buffer pool each) behind the
  same API, with deterministic term→shard routing and per-category aggregated
  statistics.
"""

from repro.storage.buffer_pool import BufferPool, BufferPoolStats
from repro.storage.btree import BPlusTree
from repro.storage.disk import DiskCostModel, DiskStats, SimulatedDisk
from repro.storage.environment import StorageEnvironment
from repro.storage.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultStats,
    merged_fault_stats,
    run_with_retries,
)
from repro.storage.heap_file import HeapFile, SegmentHandle
from repro.storage.kvstore import Cursor, KVStore
from repro.storage.pager import PAGE_SIZE, Page
from repro.storage.persistence import (
    FileBackedDisk,
    ScrubReport,
    WriteAheadLog,
    open_any_environment,
    open_environment,
    open_sharded_environment,
)
from repro.storage.sharding import (
    ShardedEnvironment,
    ShardedHeapFile,
    ShardedKVStore,
    ShardLoad,
    shard_load,
    shard_of_doc,
    shard_of_term,
)

__all__ = [
    "PAGE_SIZE",
    "Page",
    "DiskCostModel",
    "DiskStats",
    "SimulatedDisk",
    "BufferPool",
    "BufferPoolStats",
    "BPlusTree",
    "HeapFile",
    "SegmentHandle",
    "KVStore",
    "Cursor",
    "StorageEnvironment",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultStats",
    "merged_fault_stats",
    "run_with_retries",
    "FileBackedDisk",
    "ScrubReport",
    "WriteAheadLog",
    "open_environment",
    "open_sharded_environment",
    "open_any_environment",
    "ShardedEnvironment",
    "ShardedKVStore",
    "ShardedHeapFile",
    "ShardLoad",
    "shard_load",
    "shard_of_term",
    "shard_of_doc",
]
