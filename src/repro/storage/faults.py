"""Seeded, deterministic storage fault injection.

Real disks fail in ways a clean ``crash()`` never exercises: writes error
transiently, fsyncs fail and take the unsynced tail with them on power loss,
page writes tear, the volume fills up, and bits rot silently under data at
rest.  This module schedules exactly those faults *deterministically* so the
chaos workloads (:mod:`repro.workloads.chaos`) can drive the engine through
arbitrary failure histories and still be byte-reproducible from a seed.

Model
-----
Every injectable operation site in the storage engine (see :data:`OP_KINDS`)
asks its :class:`FaultInjector` whether the *n*-th occurrence of that op
faults, and with which kind.  The decision is a pure function of
``(op, count, seed)`` — no wall clock, no global RNG — so the same plan
replayed against the same workload injects the same faults at the same
instructions.  A :class:`FaultPlan` combines:

* a background *rate* of transient/latency faults rolled per occurrence, with
  a bounded consecutive run length (``max_run``) so background noise alone
  never exceeds the retry budget; and
* explicit :class:`FaultSpec` escalations — "occurrences ``at .. at+run`` of
  op X fail with kind K" — which *are* allowed to outlast the budget and are
  how schedules deterministically force hard failures (retry exhaustion,
  ENOSPC, bit-rot, failed commits).

Fault kinds
-----------
``transient``
    The op raises :class:`~repro.errors.TransientIOError` before any effect.
``torn``
    A WAL append/commit writes only a prefix of its frame, then raises
    ``TransientIOError`` — the torn bytes stay in the file, exactly what a
    power cut mid-``write(2)`` leaves behind.
``fsync``
    The fsync call fails *after* the data reached the OS cache: power-loss
    semantics, the record may or may not be durable, so the caller must roll
    back to the last known-durable offset before retrying.
``enospc``
    :class:`~repro.errors.DiskFullError`; hard, never retried.
``bitrot``
    A page image read from ``pages.dat`` comes back with one byte flipped;
    detection is the per-page checksum's job, not the injector's.
``latency``
    The op sleeps ``latency_s`` and then proceeds normally.

With no injector attached (the default everywhere) every hook is a single
``is not None`` check — accounting, fingerprints and timings are untouched,
which is what keeps fig7/table1 bit-identical with injection disabled.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable

from repro.errors import (
    DiskFullError,
    RetryExhaustedError,
    StorageError,
    TransientIOError,
)
from repro.obs.events import emit

#: Injection sites and the fault kinds meaningful at each.  ``read``/``write``/
#: ``allocate`` fire on the public ``SimulatedDisk`` accounting paths (both
#: backends); the remaining sites are file-backend internals.
OP_KINDS: dict[str, tuple[str, ...]] = {
    "read": ("transient", "latency"),
    "write": ("transient", "latency", "enospc"),
    "allocate": ("transient", "enospc"),
    "page_read": ("bitrot", "latency"),
    "wal_append": ("transient", "torn", "enospc", "latency"),
    "wal_commit": ("transient", "torn", "latency"),
    "wal_fsync": ("fsync",),
    "data_write": ("transient", "torn", "enospc"),
    "data_fsync": ("fsync",),
    "meta_write": ("transient", "torn"),
    "meta_fsync": ("fsync",),
}

FAULT_KINDS = ("transient", "torn", "fsync", "enospc", "bitrot", "latency")

#: How many times a transient fault is retried before escalating.
DEFAULT_RETRY_BUDGET = 4


@dataclass(frozen=True)
class FaultSpec:
    """An explicit scheduled fault: occurrences ``[at, at + run)`` of ``op``
    fail with ``kind``.  Escalations bypass the background ``max_run`` bound,
    so a spec with ``run > retry_budget`` deterministically exhausts retries.
    """

    op: str
    kind: str
    at: int
    run: int = 1

    def __post_init__(self) -> None:
        if self.op not in OP_KINDS:
            raise StorageError(f"unknown fault op {self.op!r}; known: {sorted(OP_KINDS)}")
        if self.kind not in FAULT_KINDS:
            raise StorageError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.at < 0 or self.run < 1:
            raise StorageError(f"fault spec needs at >= 0 and run >= 1, got {self}")

    def covers(self, count: int) -> bool:
        return self.at <= count < self.at + self.run


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule keyed by ``(op, count, seed)``.

    Parameters
    ----------
    seed:
        Seed of the background roll; ``None`` disables background faults
        entirely (explicit ``specs`` still fire).
    rate:
        Per-occurrence probability of a background fault on each op in
        ``ops``.
    ops:
        Ops subject to background faults (defaults to every site whose kinds
        include ``transient`` or ``latency``).
    max_run:
        Longest consecutive background-fault run per op.  Keeping it below
        the retry budget guarantees background noise alone always retries to
        success; only explicit escalation specs can exhaust the budget.
    specs:
        Explicit scheduled faults (see :class:`FaultSpec`).
    retry_budget / backoff_s:
        Bounded-retry policy: a transient fault is retried up to
        ``retry_budget`` times with a deterministic linear backoff of
        ``backoff_s * attempt`` seconds (0 keeps tests instant), then
        escalates to :class:`~repro.errors.RetryExhaustedError`.
    latency_s:
        Sleep injected by ``latency`` faults.
    shards:
        When set, :meth:`for_shard` returns a disabled plan for any shard not
        in the tuple, confining the blast radius to chosen failure domains.
    """

    seed: "int | None" = None
    rate: float = 0.0
    ops: "tuple[str, ...] | None" = None
    max_run: int = 2
    specs: tuple[FaultSpec, ...] = ()
    retry_budget: int = DEFAULT_RETRY_BUDGET
    backoff_s: float = 0.0
    latency_s: float = 0.0
    shards: "tuple[int, ...] | None" = None

    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan that never faults (plumbing exercised, behaviour unchanged)."""
        return cls()

    @classmethod
    def chaos(cls, seed: int, backend: str = "file", rate: float = 0.02,
              escalations: int = 1, retry_budget: int = DEFAULT_RETRY_BUDGET,
              shards: "tuple[int, ...] | None" = None) -> "FaultPlan":
        """A seeded storm profile matched to what a backend can survive.

        The memory backend has no durable state to recover from, so its
        profile only schedules faults that are atomic by construction:
        transient runs *within* the retry budget, always retried back to
        success — a multi-page update that escalated mid-flight would strand
        a partial in-memory mutation nothing can roll back.  The file
        backend additionally gets budget-exceeding escalations, torn
        appends, failed fsyncs, ENOSPC and bit-rot — its hard failures are
        survivable because crash-recovery rolls the environment back to the
        last commit.
        """
        # String seeds hash via SHA-512, so schedules are PYTHONHASHSEED-proof.
        rng = random.Random(f"chaos:{seed}:{backend}")
        if backend == "memory":
            ops: tuple[str, ...] = ("read", "write")
            spec_menu: list[tuple[str, str]] = [("read", "transient"),
                                                ("write", "transient")]
            # Stay inside the budget even when a background run (max_run)
            # lands flush against the spec window: memory cannot recover.
            exceed = -min(2, max(0, retry_budget - 1))
        else:
            ops = ("read", "write", "wal_append", "wal_commit", "wal_fsync")
            spec_menu = [
                ("read", "transient"),
                ("wal_commit", "transient"),
                ("wal_fsync", "fsync"),
                ("wal_append", "torn"),
                ("page_read", "bitrot"),
                ("wal_append", "enospc"),
            ]
            exceed = 2
        specs = []
        for _ in range(max(0, escalations)):
            op, kind = rng.choice(spec_menu)
            run = (max(1, retry_budget + exceed)
                   if kind in ("transient", "fsync", "torn") else 1)
            specs.append(FaultSpec(op=op, kind=kind, at=rng.randrange(4, 60), run=run))
        return cls(
            seed=seed, rate=rate, ops=ops, max_run=min(2, retry_budget - 1),
            specs=tuple(specs), retry_budget=retry_budget, shards=shards,
        )

    @property
    def enabled(self) -> bool:
        """Whether this plan can ever inject anything."""
        return bool(self.specs) or (self.seed is not None and self.rate > 0.0)

    def for_shard(self, shard: int) -> "FaultPlan":
        """The plan as seen by one shard's injector (derived seed per shard)."""
        if self.shards is not None and shard not in self.shards:
            return replace(self, seed=None, rate=0.0, specs=())
        if self.seed is None:
            return self
        return replace(self, seed=(self.seed * 1_000_003 + shard) & 0x7FFFFFFF)

    def fault_at(self, op: str, count: int, current_run: int) -> "str | None":
        """The fault kind (or ``None``) for the ``count``-th occurrence of ``op``."""
        for spec in self.specs:
            if spec.op == op and spec.covers(count):
                return spec.kind
        if self.seed is None or self.rate <= 0.0:
            return None
        if self.ops is not None and op not in self.ops:
            return None
        if current_run >= self.max_run:
            return None
        rng = random.Random(f"{self.seed}:{op}:{count}")
        if rng.random() >= self.rate:
            return None
        kinds = [kind for kind in OP_KINDS[op]
                 if kind in ("transient", "latency", "torn")]
        if not kinds:
            return None
        return rng.choice(kinds)


@dataclass
class FaultStats:
    """What an injector actually did (per-kind counts, retries, escalations)."""

    injected: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    escalations: int = 0

    def count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def merge(self, other: "FaultStats") -> "FaultStats":
        merged = FaultStats(
            injected=dict(self.injected),
            retries=self.retries + other.retries,
            escalations=self.escalations + other.escalations,
        )
        for kind, count in other.injected.items():
            merged.injected[kind] = merged.injected.get(kind, 0) + count
        return merged


class FaultInjector:
    """Runtime side of a :class:`FaultPlan`, attached to one disk (and WAL).

    Tracks per-op occurrence counts and consecutive-run lengths, applies
    latency faults inline, and tags every hard error it escalates with the
    owning ``shard`` so the router can quarantine the right failure domain.
    """

    __slots__ = ("plan", "shard", "stats", "_counts", "_runs")

    def __init__(self, plan: FaultPlan, shard: "int | None" = None) -> None:
        self.plan = plan
        self.shard = shard
        self.stats = FaultStats()
        self._counts: dict[str, int] = {}
        self._runs: dict[str, int] = {}

    # -- rolling -------------------------------------------------------------

    def roll(self, op: str) -> "str | None":
        """Decide the current occurrence of ``op``; latency is applied here.

        Returns the fault kind the *site* must act on (``transient``,
        ``torn``, ``fsync``, ``enospc``, ``bitrot``) or ``None``.
        """
        count = self._counts.get(op, 0)
        self._counts[op] = count + 1
        kind = self.plan.fault_at(op, count, self._runs.get(op, 0))
        if kind is None:
            self._runs[op] = 0
            return None
        self._runs[op] = self._runs.get(op, 0) + 1
        self.stats.count(kind)
        if kind == "latency":
            if self.plan.latency_s > 0.0:
                time.sleep(self.plan.latency_s)
            return None
        return kind

    def fault_point(self, op: str) -> None:
        """Raise-or-pass site for ops with no partial-effect semantics."""
        kind = self.roll(op)
        if kind is None:
            return
        if kind == "enospc":
            error = DiskFullError(f"injected ENOSPC on {op!r}")
            error.shard = self.shard
            raise error
        # torn/fsync/bitrot are meaningless here; treat them as transient.
        raise TransientIOError(f"injected transient fault on {op!r}")

    def corrupt(self, op: str, payload: bytes) -> bytes:
        """Deterministically flip one byte of ``payload`` on a bitrot roll."""
        if self.roll(op) != "bitrot" or not payload:
            return payload
        count = self._counts.get(op, 0)
        position = random.Random(f"{self.plan.seed}:{op}:{count}:pos").randrange(len(payload))
        mutated = bytearray(payload)
        mutated[position] ^= 0xFF
        return bytes(mutated)

    # -- retry policy ----------------------------------------------------------

    def backoff(self, attempt: int) -> None:
        """Deterministic linear backoff (no jitter; 0 by default)."""
        delay = self.plan.backoff_s * attempt
        if delay > 0.0:
            time.sleep(delay)

    def tag(self, error: BaseException) -> BaseException:
        """Attach this injector's failure domain to an escalated error."""
        if getattr(error, "shard", None) is None:
            try:
                error.shard = self.shard  # type: ignore[attr-defined]
            except AttributeError:
                pass
        return error


def run_with_retries(injector: "FaultInjector | None", op: str,
                     attempt: Callable[[], Any],
                     reset: "Callable[[], None] | None" = None) -> Any:
    """Run ``attempt`` with the bounded deterministic retry policy.

    ``attempt`` may raise :class:`~repro.errors.TransientIOError` (injected or
    real); each failure runs ``reset`` (cleanup to a retryable state — e.g.
    truncating a torn WAL tail), backs off deterministically and retries, up
    to the plan's budget, then escalates to
    :class:`~repro.errors.RetryExhaustedError` tagged with the failure domain.
    With no injector the call is pass-through (one extra ``None`` check).
    """
    if injector is None:
        return attempt()
    failures = 0
    while True:
        try:
            return attempt()
        except TransientIOError as exc:
            if reset is not None:
                reset()
            failures += 1
            if failures > injector.plan.retry_budget:
                injector.stats.escalations += 1
                emit("fault_escalation", shard=injector.shard, op=op,
                     retries=failures - 1)
                raise injector.tag(RetryExhaustedError(
                    f"{op}: still failing after {failures - 1} retries"
                )) from exc
            injector.stats.retries += 1
            injector.backoff(failures)


def merged_fault_stats(stats: Iterable[FaultStats]) -> FaultStats:
    """Aggregate several injectors' stats (sharded-environment reporting)."""
    total = FaultStats()
    for item in stats:
        total = total.merge(item)
    return total
