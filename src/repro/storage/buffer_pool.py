"""LRU buffer pool over the simulated disk.

BerkeleyDB's cache is the component the paper tunes to 100 MB: the Score table
and short lists fit in it, the long inverted lists do not (queries start from a
cold cache).  This class reproduces that behaviour with an LRU page cache and
hit/miss/eviction accounting, plus the ability to flush or drop cached pages so
experiments can force a cold cache for the long lists only.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.errors import BufferPoolError
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import Page


@dataclass
class BufferPoolStats:
    """Counters for buffer-pool activity."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total page requests served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cache (0.0 when unused)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def snapshot(self) -> "BufferPoolStats":
        """Return an independent copy of the current counters."""
        return BufferPoolStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            dirty_writebacks=self.dirty_writebacks,
        )

    def diff(self, earlier: "BufferPoolStats") -> "BufferPoolStats":
        """Return the counter deltas since ``earlier``."""
        return BufferPoolStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            dirty_writebacks=self.dirty_writebacks - earlier.dirty_writebacks,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0

    @classmethod
    def sum_of(cls, stats: "Iterable[BufferPoolStats]") -> "BufferPoolStats":
        """Per-category sum of several counter sets (sharded-pool aggregation).

        Each underlying pool charges every access to exactly one counter set,
        so summing the categories is the aggregate fingerprint — nothing is
        double-counted and nothing is lost.
        """
        total = cls()
        for item in stats:
            total.hits += item.hits
            total.misses += item.misses
            total.evictions += item.evictions
            total.dirty_writebacks += item.dirty_writebacks
        return total


class BufferPool:
    """A page cache in front of a :class:`SimulatedDisk`.

    Parameters
    ----------
    disk:
        Backing simulated disk.
    capacity_pages:
        Maximum number of pages kept in memory.  Must be at least 1.
    policy:
        Replacement policy.  ``"lru"`` (the default, and the engine the
        experiments' I/O fingerprints are pinned to) is a plain LRU chain.
        ``"midpoint"`` is BerkeleyDB/InnoDB-style midpoint insertion — a
        scan-resistant variant that admits newly fetched pages into a
        probationary *old* segment and promotes them into the protected *new*
        segment only on a re-reference, so one long-list scan cannot flush
        the Score table and short lists out of the cache.  Victims come from
        the old segment's LRU end first.
    old_fraction:
        Fraction of the capacity reserved as the probationary segment's
        target size under ``"midpoint"`` (InnoDB's classic 3/8 by default).
    """

    def __init__(self, disk: SimulatedDisk, capacity_pages: int = 1024,
                 policy: str = "lru", old_fraction: float = 0.375) -> None:
        if capacity_pages < 1:
            raise BufferPoolError(
                f"buffer pool capacity must be at least one page, got {capacity_pages}"
            )
        if policy not in ("lru", "midpoint"):
            raise BufferPoolError(
                f"unknown buffer-pool policy {policy!r}; available: lru, midpoint"
            )
        if not 0.0 < old_fraction < 1.0:
            raise BufferPoolError(
                f"old_fraction must be in (0, 1), got {old_fraction}"
            )
        self.disk = disk
        self.capacity_pages = capacity_pages
        self.policy = policy
        self.stats = BufferPoolStats()
        self._frames: OrderedDict[int, Page] = OrderedDict()
        # Midpoint segments (None under plain LRU, whose hot path stays
        # branch-cheap and byte-identical to the seed engine).
        self._old: "OrderedDict[int, Page] | None" = None
        self._new: "OrderedDict[int, Page] | None" = None
        self._old_target = 0
        if policy == "midpoint":
            self._old = OrderedDict()
            self._new = OrderedDict()
            self._old_target = max(1, round(capacity_pages * old_fraction))
            # Per-instance rebinding keeps the default LRU hot path exactly
            # the seed engine's branch-free code: only midpoint instances pay
            # for segment bookkeeping in get/put.
            self.get = self._get_midpoint  # type: ignore[method-assign]
            self.put = self._put_midpoint  # type: ignore[method-assign]
            self._admit = self._admit_midpoint  # type: ignore[method-assign]
            self._evict_if_needed = self._evict_if_needed_midpoint  # type: ignore[method-assign]

    # -- basic operations --------------------------------------------------

    def get(self, page_id: int) -> Page:
        """Fetch a page, reading it from disk on a miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(page_id)
            return frame
        self.stats.misses += 1
        page = self.disk.read(page_id)
        self._admit(page)
        return page

    def _get_midpoint(self, page_id: int) -> Page:
        """Midpoint-insertion fetch: promote to protected on a re-read."""
        assert self._old is not None and self._new is not None
        frame = self._new.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            self._new.move_to_end(page_id)
            return frame
        frame = self._old.pop(page_id, None)
        if frame is not None:
            # Second reference: promote into the protected segment.
            self.stats.hits += 1
            self._new[page_id] = frame
            self._shrink_new_segment()
            return frame
        self.stats.misses += 1
        page = self.disk.read(page_id)
        self._admit(page)
        return page

    def put(self, page: Page) -> None:
        """Install a (possibly dirty) page into the pool."""
        page.dirty = True
        existing = page.page_id in self._frames
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        if not existing:
            self._evict_if_needed()

    def _put_midpoint(self, page: Page) -> None:
        """Midpoint-insertion install.

        Writes refresh recency but never promote: a freshly allocated page is
        written immediately (B+-tree node installs), and that first write
        must not count as the re-reference that makes a page "hot" — only a
        later re-read does.
        """
        assert self._old is not None and self._new is not None
        page.dirty = True
        if page.page_id in self._new:
            self._new[page.page_id] = page
            self._new.move_to_end(page.page_id)
            return
        if page.page_id in self._old:
            self._old[page.page_id] = page
            self._old.move_to_end(page.page_id)
            return
        self._admit(page)

    def allocate(self) -> Page:
        """Allocate a new page on disk and cache it."""
        page_id = self.disk.allocate()
        page = Page(page_id=page_id, capacity=self.disk.page_size)
        self._admit(page)
        return page

    def flush(self) -> None:
        """Write back every dirty cached page without dropping it."""
        for page in self._iter_frames():
            if page.dirty:
                self.disk.write(page)
                page.dirty = False
                self.stats.dirty_writebacks += 1

    def flush_page(self, page_id: int) -> None:
        """Write back a single page if it is cached and dirty."""
        page = self.frame(page_id)
        if page is not None and page.dirty:
            self.disk.write(page)
            page.dirty = False
            self.stats.dirty_writebacks += 1

    def drop(self, page_ids: "set[int] | None" = None) -> None:
        """Evict cached pages (flushing dirty ones first).

        With ``page_ids=None`` the whole cache is dropped — this is how
        experiments establish a cold cache before timing a query, mirroring the
        paper's cold-cache query methodology.
        """
        if page_ids is None:
            targets = list(self._resident_ids())
        elif self._old is None:
            # Inlined membership test: drop() over a large heap file's id set
            # is on the cold-cache query path, so avoid a method call per id.
            frames = self._frames
            targets = [pid for pid in page_ids if pid in frames]
        else:
            new, old = self._new, self._old
            targets = [pid for pid in page_ids if pid in new or pid in old]
        for page_id in targets:
            self.flush_page(page_id)
            self._discard(page_id)

    def peek(self, page_id: int) -> Page:
        """Accounting-free page access for maintenance traversals.

        Returns the cached frame when resident (without touching hit counters
        or LRU order) and otherwise reads the disk copy without charging disk
        statistics or admitting the page.  Statistics reporting and cache-drop
        bookkeeping use this path so that *measuring* the storage never changes
        what the measured workload would have read.
        """
        frame = self.frame(page_id)
        if frame is not None:
            return frame
        return self.disk.peek(page_id)

    def frame(self, page_id: int) -> "Page | None":
        """The resident frame for a page, or ``None`` — no accounting, no LRU.

        Used by the B+-tree's split path to manage a frame's decoded slot
        in place (see ``BPlusTree._split``); regular reads go through
        :meth:`get`.
        """
        if self._old is None:
            return self._frames.get(page_id)
        assert self._new is not None
        frame = self._new.get(page_id)
        if frame is not None:
            return frame
        return self._old.get(page_id)

    def contains(self, page_id: int) -> bool:
        """Whether the page is currently cached (does not update LRU order)."""
        if self._old is None:
            return page_id in self._frames
        assert self._new is not None
        return page_id in self._new or page_id in self._old

    def hit_rate(self) -> float:
        """Lifetime fraction of requests served from the cache (0.0 when unused).

        The adaptive batch-window sizing in the experiment runner reads this
        (or a windowed delta of the same counters) to decide whether the
        working set of a batch still fits the cache.
        """
        return self.stats.hit_rate

    @property
    def cached_pages(self) -> int:
        """Number of pages currently resident."""
        if self._old is None:
            return len(self._frames)
        assert self._new is not None
        return len(self._new) + len(self._old)

    @property
    def protected_pages(self) -> int:
        """Pages in the midpoint policy's protected segment (0 under LRU)."""
        return len(self._new) if self._new is not None else 0

    @property
    def probationary_pages(self) -> int:
        """Pages in the midpoint policy's probationary segment (0 under LRU)."""
        return len(self._old) if self._old is not None else 0

    # -- internals ----------------------------------------------------------

    def _iter_frames(self):
        if self._old is None:
            return list(self._frames.values())
        assert self._new is not None
        return [*self._old.values(), *self._new.values()]

    def _resident_ids(self):
        if self._old is None:
            return list(self._frames.keys())
        assert self._new is not None
        return [*self._old.keys(), *self._new.keys()]

    def _discard(self, page_id: int) -> None:
        if self._old is None:
            self._frames.pop(page_id, None)
            return
        assert self._new is not None
        if self._old.pop(page_id, None) is None:
            self._new.pop(page_id, None)

    def _admit(self, page: Page) -> None:
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        self._evict_if_needed()

    def _admit_midpoint(self, page: Page) -> None:
        # Midpoint insertion: newly fetched pages enter the probationary
        # segment at its MRU end; only a later re-reference promotes them.
        assert self._old is not None
        self._old[page.page_id] = page
        self._old.move_to_end(page.page_id)
        self._evict_if_needed_midpoint()

    def _shrink_new_segment(self) -> None:
        """Demote the protected segment's LRU pages once it outgrows its share."""
        assert self._old is not None and self._new is not None
        limit = max(1, self.capacity_pages - self._old_target)
        while len(self._new) > limit:
            page_id, page = self._new.popitem(last=False)
            self._old[page.page_id] = page
            self._old.move_to_end(page.page_id)
            del page_id

    def _write_back_victim(self, victim: Page) -> None:
        if victim.dirty:
            self.disk.write(victim)
            self.stats.dirty_writebacks += 1
        self.stats.evictions += 1

    def _evict_if_needed(self) -> None:
        while len(self._frames) > self.capacity_pages:
            _victim_id, victim = self._frames.popitem(last=False)
            if victim.dirty:
                self.disk.write(victim)
                self.stats.dirty_writebacks += 1
            self.stats.evictions += 1

    def _evict_if_needed_midpoint(self) -> None:
        assert self._old is not None and self._new is not None
        while len(self._old) + len(self._new) > self.capacity_pages:
            if self._old:
                _victim_id, victim = self._old.popitem(last=False)
            else:
                _victim_id, victim = self._new.popitem(last=False)
            self._write_back_victim(victim)
