"""LRU buffer pool over the simulated disk.

BerkeleyDB's cache is the component the paper tunes to 100 MB: the Score table
and short lists fit in it, the long inverted lists do not (queries start from a
cold cache).  This class reproduces that behaviour with an LRU page cache and
hit/miss/eviction accounting, plus the ability to flush or drop cached pages so
experiments can force a cold cache for the long lists only.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.errors import BufferPoolError
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import Page


@dataclass
class BufferPoolStats:
    """Counters for buffer-pool activity."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total page requests served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cache (0.0 when unused)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def snapshot(self) -> "BufferPoolStats":
        """Return an independent copy of the current counters."""
        return BufferPoolStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            dirty_writebacks=self.dirty_writebacks,
        )

    def diff(self, earlier: "BufferPoolStats") -> "BufferPoolStats":
        """Return the counter deltas since ``earlier``."""
        return BufferPoolStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            dirty_writebacks=self.dirty_writebacks - earlier.dirty_writebacks,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0

    @classmethod
    def sum_of(cls, stats: "Iterable[BufferPoolStats]") -> "BufferPoolStats":
        """Per-category sum of several counter sets (sharded-pool aggregation).

        Each underlying pool charges every access to exactly one counter set,
        so summing the categories is the aggregate fingerprint — nothing is
        double-counted and nothing is lost.
        """
        total = cls()
        for item in stats:
            total.hits += item.hits
            total.misses += item.misses
            total.evictions += item.evictions
            total.dirty_writebacks += item.dirty_writebacks
        return total


class BufferPool:
    """An LRU page cache in front of a :class:`SimulatedDisk`.

    Parameters
    ----------
    disk:
        Backing simulated disk.
    capacity_pages:
        Maximum number of pages kept in memory.  Must be at least 1.
    """

    def __init__(self, disk: SimulatedDisk, capacity_pages: int = 1024) -> None:
        if capacity_pages < 1:
            raise BufferPoolError(
                f"buffer pool capacity must be at least one page, got {capacity_pages}"
            )
        self.disk = disk
        self.capacity_pages = capacity_pages
        self.stats = BufferPoolStats()
        self._frames: OrderedDict[int, Page] = OrderedDict()

    # -- basic operations --------------------------------------------------

    def get(self, page_id: int) -> Page:
        """Fetch a page, reading it from disk on a miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(page_id)
            return frame
        self.stats.misses += 1
        page = self.disk.read(page_id)
        self._admit(page)
        return page

    def put(self, page: Page) -> None:
        """Install a (possibly dirty) page into the pool."""
        page.dirty = True
        existing = page.page_id in self._frames
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        if not existing:
            self._evict_if_needed()

    def allocate(self) -> Page:
        """Allocate a new page on disk and cache it."""
        page_id = self.disk.allocate()
        page = Page(page_id=page_id, capacity=self.disk.page_size)
        self._admit(page)
        return page

    def flush(self) -> None:
        """Write back every dirty cached page without dropping it."""
        for page in self._frames.values():
            if page.dirty:
                self.disk.write(page)
                page.dirty = False
                self.stats.dirty_writebacks += 1

    def flush_page(self, page_id: int) -> None:
        """Write back a single page if it is cached and dirty."""
        page = self._frames.get(page_id)
        if page is not None and page.dirty:
            self.disk.write(page)
            page.dirty = False
            self.stats.dirty_writebacks += 1

    def drop(self, page_ids: "set[int] | None" = None) -> None:
        """Evict cached pages (flushing dirty ones first).

        With ``page_ids=None`` the whole cache is dropped — this is how
        experiments establish a cold cache before timing a query, mirroring the
        paper's cold-cache query methodology.
        """
        if page_ids is None:
            targets = list(self._frames.keys())
        else:
            targets = [pid for pid in page_ids if pid in self._frames]
        for page_id in targets:
            self.flush_page(page_id)
            self._frames.pop(page_id, None)

    def peek(self, page_id: int) -> Page:
        """Accounting-free page access for maintenance traversals.

        Returns the cached frame when resident (without touching hit counters
        or LRU order) and otherwise reads the disk copy without charging disk
        statistics or admitting the page.  Statistics reporting and cache-drop
        bookkeeping use this path so that *measuring* the storage never changes
        what the measured workload would have read.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            return frame
        return self.disk.peek(page_id)

    def frame(self, page_id: int) -> "Page | None":
        """The resident frame for a page, or ``None`` — no accounting, no LRU.

        Used by the B+-tree's split path to manage a frame's decoded slot
        in place (see ``BPlusTree._split``); regular reads go through
        :meth:`get`.
        """
        return self._frames.get(page_id)

    def contains(self, page_id: int) -> bool:
        """Whether the page is currently cached (does not update LRU order)."""
        return page_id in self._frames

    def hit_rate(self) -> float:
        """Lifetime fraction of requests served from the cache (0.0 when unused).

        The adaptive batch-window sizing in the experiment runner reads this
        (or a windowed delta of the same counters) to decide whether the
        working set of a batch still fits the cache.
        """
        return self.stats.hit_rate

    @property
    def cached_pages(self) -> int:
        """Number of pages currently resident."""
        return len(self._frames)

    # -- internals ----------------------------------------------------------

    def _admit(self, page: Page) -> None:
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        while len(self._frames) > self.capacity_pages:
            victim_id, victim = self._frames.popitem(last=False)
            if victim.dirty:
                self.disk.write(victim)
                self.stats.dirty_writebacks += 1
            self.stats.evictions += 1
            # victim_id retained only for clarity; nothing further to do.
            del victim_id
