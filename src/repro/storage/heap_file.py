"""Append-only heap file for immutable binary objects.

The paper stores each long inverted list "as a binary object in the database
since they are never updated; they were read in a page at a time during query
processing" (§5.2).  A :class:`HeapFile` reproduces that layout: a write splits
a byte string across freshly allocated pages and returns a
:class:`SegmentHandle`; reads stream the segment back one page at a time so
that long scans are charged one buffer-pool access per page and early
termination saves the remaining pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import split_into_pages


@dataclass(frozen=True)
class SegmentHandle:
    """Reference to an immutable byte segment stored in a heap file.

    Attributes
    ----------
    segment_id:
        Identifier assigned by the owning :class:`HeapFile`.
    page_ids:
        The (contiguous, in allocation order) pages holding the payload.
    length:
        Payload length in bytes.
    """

    segment_id: int
    page_ids: tuple[int, ...]
    length: int

    @property
    def page_count(self) -> int:
        """Number of pages the segment occupies."""
        return len(self.page_ids)


@dataclass
class HeapFile:
    """A collection of immutable byte segments backed by the buffer pool.

    Parameters
    ----------
    pool:
        Buffer pool through which all page I/O flows.
    name:
        Human-readable name used in error messages and statistics.
    """

    pool: BufferPool
    name: str = "heap"
    _segments: dict[int, SegmentHandle] = field(default_factory=dict)
    _next_segment_id: int = 0
    # Lazily built, incrementally maintained page-id set; ``page_ids()`` is on
    # the cold-cache query path (drop_from_cache before every timed query) and
    # rebuilding it from every handle dominated the macro benchmark.
    _page_id_cache: "set[int] | None" = field(default=None, repr=False, compare=False)

    # -- persistence ---------------------------------------------------------

    def state(self) -> dict:
        """The heap file's non-page state for a durability catalog."""
        return {
            "segments": {
                segment_id: (handle.page_ids, handle.length)
                for segment_id, handle in self._segments.items()
            },
            "next_segment_id": self._next_segment_id,
        }

    @classmethod
    def attach(cls, pool: BufferPool, name: str, state: dict) -> "HeapFile":
        """Rebuild a heap file around existing pages (checkpoint/WAL recovery)."""
        segments = {
            segment_id: SegmentHandle(
                segment_id=segment_id, page_ids=tuple(page_ids), length=length
            )
            for segment_id, (page_ids, length) in state["segments"].items()
        }
        return cls(pool, name=name, _segments=segments,
                   _next_segment_id=state["next_segment_id"])

    def write(self, payload: bytes, key: object = None) -> SegmentHandle:
        """Store ``payload`` as a new immutable segment and return its handle.

        ``key`` is a routing hint accepted for signature compatibility with
        :class:`~repro.storage.sharding.ShardedHeapFile` (one heap file is one
        shard, so it is ignored here).
        """
        del key
        fragments = split_into_pages(payload, self.pool.disk.page_size)
        page_ids: list[int] = []
        for fragment in fragments:
            page = self.pool.allocate()
            page.write(fragment)
            self.pool.put(page)
            page_ids.append(page.page_id)
        handle = SegmentHandle(
            segment_id=self._next_segment_id,
            page_ids=tuple(page_ids),
            length=len(payload),
        )
        self._segments[handle.segment_id] = handle
        self._next_segment_id += 1
        if self._page_id_cache is not None:
            self._page_id_cache.update(page_ids)
        return handle

    def read(self, handle: SegmentHandle) -> bytes:
        """Read an entire segment back as one byte string."""
        return b"".join(self.iter_pages(handle))

    def iter_pages(self, handle: SegmentHandle,
                   start_byte: int = 0) -> Iterator[bytes]:
        """Yield the segment payload one page-sized fragment at a time.

        This is the access path used by query processing over long inverted
        lists: a consumer that stops early never touches the remaining pages.
        ``start_byte`` starts the stream mid-segment — pages wholly before it
        are never fetched (the block-seek path: a scan that jumps over blocks
        is charged only for the pages it actually lands on).
        """
        self._check_handle(handle)
        if start_byte < 0 or start_byte > handle.length:
            raise StorageError(
                f"{self.name}: start byte {start_byte} outside segment "
                f"of {handle.length} bytes"
            )
        page_size = self.pool.disk.page_size
        first = start_byte // page_size
        skip = start_byte - first * page_size
        remaining = handle.length - first * page_size
        for page_id in handle.page_ids[first:]:
            page = self.pool.get(page_id)
            fragment = page.data
            if remaining < len(fragment):
                fragment = fragment[:remaining]
            remaining -= len(fragment)
            if skip:
                fragment = fragment[skip:]
                skip = 0
            yield fragment

    def peek_pages(self, handle: SegmentHandle) -> Iterator[bytes]:
        """Accounting-free counterpart of :meth:`iter_pages`.

        Streams the segment through :meth:`BufferPool.peek` — no hit counters,
        no LRU movement, no disk-read charges, no admission.  This is the read
        path of maintenance layers that must not perturb the measured workload
        (the hot-term list cache fill, directory-served length estimates).
        """
        self._check_handle(handle)
        remaining = handle.length
        for page_id in handle.page_ids:
            page = self.pool.peek(page_id)
            fragment = page.data
            if remaining < len(fragment):
                fragment = fragment[:remaining]
            remaining -= len(fragment)
            yield fragment

    def delete(self, handle: SegmentHandle) -> None:
        """Drop a segment and free its pages."""
        self._check_handle(handle)
        for page_id in handle.page_ids:
            self.pool.drop({page_id})
            self.pool.disk.free(page_id)
        del self._segments[handle.segment_id]
        if self._page_id_cache is not None:
            self._page_id_cache.difference_update(handle.page_ids)

    def get(self, segment_id: int) -> SegmentHandle:
        """Look up a segment handle by id."""
        handle = self._segments.get(segment_id)
        if handle is None:
            raise StorageError(f"{self.name}: unknown segment {segment_id}")
        return handle

    def page_ids(self) -> set[int]:
        """All page ids currently owned by this heap file."""
        if self._page_id_cache is None:
            ids: set[int] = set()
            for handle in self._segments.values():
                ids.update(handle.page_ids)
            self._page_id_cache = ids
        return self._page_id_cache

    def drop_from_cache(self) -> None:
        """Evict every page of this heap file from the buffer pool.

        Used to establish the paper's cold-cache condition for long inverted
        lists before timing a query.
        """
        self.pool.drop(self.page_ids())

    @property
    def segment_count(self) -> int:
        """Number of live segments."""
        return len(self._segments)

    def total_bytes(self) -> int:
        """Total payload bytes across all live segments."""
        return sum(handle.length for handle in self._segments.values())

    def total_pages(self) -> int:
        """Total pages across all live segments."""
        return sum(handle.page_count for handle in self._segments.values())

    def _check_handle(self, handle: SegmentHandle) -> None:
        stored = self._segments.get(handle.segment_id)
        if stored is None or stored.page_ids != handle.page_ids:
            raise StorageError(
                f"{self.name}: segment {handle.segment_id} is unknown or stale"
            )
