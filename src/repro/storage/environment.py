"""Storage environment: the shared disk, buffer pool and named stores.

A :class:`StorageEnvironment` plays the role of a BerkeleyDB environment in
the paper's implementation: one page cache shared by every table and index,
plus a catalogue of named stores.  Experiments grab I/O snapshots from here to
attribute page reads/writes to individual operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.buffer_pool import BufferPool, BufferPoolStats
from repro.storage.disk import DiskCostModel, DiskStats, SimulatedDisk
from repro.storage.heap_file import HeapFile
from repro.storage.kvstore import KVStore
from repro.storage.pager import PAGE_SIZE


@dataclass(frozen=True)
class IOSnapshot:
    """Immutable snapshot of disk and buffer-pool counters."""

    disk: DiskStats
    pool: BufferPoolStats

    def cost_ms(self, model: DiskCostModel | None = None) -> float:
        """Estimated elapsed milliseconds implied by the disk counters."""
        return (model or DiskCostModel()).cost_ms(self.disk)


@dataclass(frozen=True)
class IODelta:
    """Difference between two :class:`IOSnapshot` instances."""

    disk: DiskStats
    pool: BufferPoolStats

    @property
    def page_reads(self) -> int:
        """Pages read from the simulated disk (buffer-pool misses)."""
        return self.disk.reads

    @property
    def page_writes(self) -> int:
        """Pages written to the simulated disk."""
        return self.disk.writes

    @property
    def pool_hits(self) -> int:
        """Buffer-pool hits (pages served without disk I/O)."""
        return self.pool.hits

    def cost_ms(self, model: DiskCostModel | None = None) -> float:
        """Estimated elapsed milliseconds implied by the disk counter deltas."""
        return (model or DiskCostModel()).cost_ms(self.disk)


class StorageEnvironment:
    """One simulated disk + buffer pool and a catalogue of named stores.

    Parameters
    ----------
    cache_pages:
        Buffer-pool capacity in pages.  The paper used a 100 MB cache over an
        805 MB data set (~12%); experiments typically scale this down with the
        corpus.
    page_size:
        Page size in bytes.
    """

    def __init__(self, cache_pages: int = 4096, page_size: int = PAGE_SIZE) -> None:
        self.disk = SimulatedDisk(page_size=page_size)
        self.pool = BufferPool(self.disk, capacity_pages=cache_pages)
        self._kvstores: dict[str, KVStore] = {}
        self._heapfiles: dict[str, HeapFile] = {}

    # -- store management -------------------------------------------------------

    def create_kvstore(self, name: str, order: int | None = None) -> KVStore:
        """Create (or raise if it exists) a named ordered key-value store."""
        if name in self._kvstores or name in self._heapfiles:
            raise StorageError(f"store {name!r} already exists")
        store = KVStore(self.pool, name=name, order=order)
        self._kvstores[name] = store
        return store

    def create_heapfile(self, name: str) -> HeapFile:
        """Create (or raise if it exists) a named heap file."""
        if name in self._kvstores or name in self._heapfiles:
            raise StorageError(f"store {name!r} already exists")
        heap = HeapFile(self.pool, name=name)
        self._heapfiles[name] = heap
        return heap

    def kvstore(self, name: str) -> KVStore:
        """Look up an existing key-value store by name."""
        store = self._kvstores.get(name)
        if store is None:
            raise StorageError(f"unknown kv store {name!r}")
        return store

    def heapfile(self, name: str) -> HeapFile:
        """Look up an existing heap file by name."""
        heap = self._heapfiles.get(name)
        if heap is None:
            raise StorageError(f"unknown heap file {name!r}")
        return heap

    def store_names(self) -> list[str]:
        """Names of all stores (key-value stores and heap files)."""
        return sorted([*self._kvstores, *self._heapfiles])

    def kvstore_names(self) -> list[str]:
        """Names of the ordered key-value stores only.

        The batch-equivalence harness snapshots every key-value store to
        compare batched against sequential application; heap files (immutable
        long lists) are excluded because score updates never rewrite them.
        """
        return sorted(self._kvstores)

    # -- statistics --------------------------------------------------------------

    def snapshot(self) -> IOSnapshot:
        """Capture the current disk and buffer-pool counters."""
        return IOSnapshot(disk=self.disk.stats.snapshot(), pool=self.pool.stats.snapshot())

    def delta_since(self, earlier: IOSnapshot) -> IODelta:
        """Counter deltas since ``earlier``."""
        return IODelta(
            disk=self.disk.stats.diff(earlier.disk),
            pool=self.pool.stats.diff(earlier.pool),
        )

    def reset_stats(self) -> None:
        """Zero all disk and buffer-pool counters."""
        self.disk.stats.reset()
        self.pool.stats.reset()

    def drop_cache(self) -> None:
        """Evict every cached page (flushing dirty pages first)."""
        self.pool.drop()

    def total_size_bytes(self) -> int:
        """Serialized size of all stores, in bytes."""
        total = sum(store.size_bytes() for store in self._kvstores.values())
        total += sum(heap.total_bytes() for heap in self._heapfiles.values())
        return total
