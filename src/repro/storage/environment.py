"""Storage environment: the shared disk, buffer pool and named stores.

A :class:`StorageEnvironment` plays the role of a BerkeleyDB environment in
the paper's implementation: one page cache shared by every table and index,
plus a catalogue of named stores.  Experiments grab I/O snapshots from here to
attribute page reads/writes to individual operations.

With ``path=`` the environment becomes durable: pages live in a
:class:`~repro.storage.persistence.file_disk.FileBackedDisk` (one paged file
plus a write-ahead log) with **identical accounting**, :meth:`commit` group-
commits a batch of work, :meth:`checkpoint` folds the log into the paged file,
and :func:`repro.storage.persistence.open_environment` recovers the
environment — stores included — to the last committed batch boundary after a
crash.  Setting ``REPRO_BACKEND=file`` in the process environment routes
every ``path``-less environment onto a fresh file-backed directory (under
``REPRO_BACKEND_DIR`` when set), which is how CI runs the whole test suite
against the durable engine.
"""

from __future__ import annotations

import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import StorageError, StoreClosedError
from repro.obs.events import EVENTS
from repro.obs.trace import span
from repro.storage.buffer_pool import BufferPool, BufferPoolStats
from repro.storage.disk import DiskCostModel, DiskStats, SimulatedDisk
from repro.storage.heap_file import HeapFile
from repro.storage.kvstore import KVStore
from repro.storage.pager import PAGE_SIZE


@dataclass(frozen=True)
class IOSnapshot:
    """Immutable snapshot of disk and buffer-pool counters."""

    disk: DiskStats
    pool: BufferPoolStats

    def cost_ms(self, model: DiskCostModel | None = None) -> float:
        """Estimated elapsed milliseconds implied by the disk counters."""
        return (model or DiskCostModel()).cost_ms(self.disk)


@dataclass(frozen=True)
class IODelta:
    """Difference between two :class:`IOSnapshot` instances."""

    disk: DiskStats
    pool: BufferPoolStats

    @property
    def page_reads(self) -> int:
        """Pages read from the simulated disk (buffer-pool misses)."""
        return self.disk.reads

    @property
    def page_writes(self) -> int:
        """Pages written to the simulated disk."""
        return self.disk.writes

    @property
    def pool_hits(self) -> int:
        """Buffer-pool hits (pages served without disk I/O)."""
        return self.pool.hits

    def cost_ms(self, model: DiskCostModel | None = None) -> float:
        """Estimated elapsed milliseconds implied by the disk counter deltas."""
        return (model or DiskCostModel()).cost_ms(self.disk)


def _backend_path_from_environ() -> str | None:
    """A fresh file-backend directory when ``REPRO_BACKEND=file`` is set."""
    if os.environ.get("REPRO_BACKEND", "").lower() != "file":
        return None
    root = os.environ.get("REPRO_BACKEND_DIR") or None
    if root is not None:
        os.makedirs(root, exist_ok=True)
    return tempfile.mkdtemp(prefix="repro-env-", dir=root)


class StorageEnvironment:
    """One simulated disk + buffer pool and a catalogue of named stores.

    Parameters
    ----------
    cache_pages:
        Buffer-pool capacity in pages.  The paper used a 100 MB cache over an
        805 MB data set (~12%); experiments typically scale this down with the
        corpus.
    page_size:
        Page size in bytes.
    path:
        Optional directory for a durable, file-backed environment.  ``None``
        keeps the memory-backed engine (unless ``REPRO_BACKEND=file`` routes
        it onto a temporary file-backed directory).  Accounting is identical
        either way.
    """

    def __init__(self, cache_pages: int = 4096, page_size: int = PAGE_SIZE,
                 path: str | None = None, pool_policy: str = "lru") -> None:
        if path is None:
            path = _backend_path_from_environ()
        if path is None:
            self.disk: SimulatedDisk = SimulatedDisk(page_size=page_size)
        else:
            from repro.storage.persistence.file_disk import FileBackedDisk

            self.disk = FileBackedDisk(path, page_size=page_size)
        self.path = path
        self.cache_pages = cache_pages
        self.pool = BufferPool(self.disk, capacity_pages=cache_pages,
                               policy=pool_policy)
        self._kvstores: dict[str, KVStore] = {}
        self._heapfiles: dict[str, HeapFile] = {}
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._app_state: Any = None
        #: Shard index for observability tags (set by ``ShardedEnvironment``;
        #: ``None`` for unsharded environments and during bootstrap).
        self.obs_shard: "int | None" = None
        #: Engine-owned event log this environment emits into (attached by
        #: the router); ``None`` falls back to the process-wide stream.
        self.event_sink = None
        #: True when this environment was rebuilt by ``open_environment``;
        #: index constructors attach to the restored stores instead of
        #: creating fresh ones.
        self.recovered = False
        if self.durable:
            # An initial checkpoint makes the directory recoverable from the
            # very first group commit (meta.pkl anchors the WAL replay).
            self.checkpoint()

    @classmethod
    def from_recovery(cls, disk: Any, catalog: dict, path: str,
                      cache_pages: int | None = None) -> "StorageEnvironment":
        """Rebuild an environment around a recovered disk and its catalog.

        Used by :func:`repro.storage.persistence.open_environment`; the page
        cache starts cold and all statistics start at zero — counters describe
        a process lifetime, not the lifetime of the data.
        """
        env = cls.__new__(cls)
        env.disk = disk
        env.path = path
        env.cache_pages = cache_pages if cache_pages is not None else catalog["cache_pages"]
        env.pool = BufferPool(disk, capacity_pages=env.cache_pages)
        env._kvstores = {}
        env._heapfiles = {}
        env._closed = False
        env._lifecycle_lock = threading.Lock()
        env._app_state = catalog.get("app")
        env.obs_shard = None
        env.event_sink = None
        env.recovered = True
        env._restore_stores(catalog.get("stores", {}))
        return env

    # -- durability ---------------------------------------------------------------

    @property
    def durable(self) -> bool:
        """Whether this environment persists pages to files."""
        return self.path is not None

    @property
    def recovered_app_state(self) -> Any:
        """Application blob of the commit this environment was recovered to."""
        return self._app_state

    @property
    def committed_batches(self) -> int:
        """Number of group commits so far (0 for a memory environment)."""
        return getattr(self.disk, "committed_batches", 0)

    def _store_catalog(self) -> dict:
        return {
            "kv": {name: store.state() for name, store in self._kvstores.items()},
            "heap": {name: heap.state() for name, heap in self._heapfiles.items()},
        }

    def _restore_stores(self, catalog: dict) -> None:
        for name, state in catalog.get("kv", {}).items():
            self._kvstores[name] = KVStore.attach(self.pool, name, state)
        for name, state in catalog.get("heap", {}).items():
            self._heapfiles[name] = HeapFile.attach(self.pool, name, state)

    def _commit_payload(self, app_state: Any) -> dict:
        return {
            "stores": self._store_catalog(),
            "app": app_state,
            "cache_pages": self.cache_pages,
            "page_size": self.disk.page_size,
        }

    def commit(self, app_state: Any = None) -> int:
        """Group-commit the current batch of work (a durability boundary).

        Flushes the buffer pool — which is charged identically on every
        backend — and, on a durable environment, appends the batch's page
        images plus a ``COMMIT`` record (carrying the store catalog and the
        optional ``app_state`` blob) to the write-ahead log in one fsync.
        After a crash, recovery lands exactly on the last committed boundary.

        Returns the committed batch id (0 on a memory environment).
        """
        self._check_open()
        if app_state is not None:
            self._app_state = app_state
        with span("storage.commit", shard=self.obs_shard):
            self.pool.flush()
            if not self.durable:
                return 0
            return self.disk.commit_batch(self._commit_payload(self._app_state))

    def checkpoint(self, app_state: Any = None) -> int:
        """Commit, then fold the WAL into the paged file and truncate it.

        A checkpoint bounds recovery time and the WAL's disk footprint; the
        store catalog and application blob are rewritten atomically alongside.
        No-op beyond the flush on a memory environment.
        """
        batch = self.commit(app_state=app_state)
        self.fold()
        return batch

    def fold(self) -> None:
        """Fold the committed WAL into the paged file (checkpoint's second half).

        Separated from :meth:`commit` so a sharded checkpoint can reach the
        commit point on *every* shard before any shard compacts: a crash or
        injected fault during a fold then leaves all shards at the same batch
        id with their logs intact, instead of one shard folded ahead of the
        commit point (which nothing can roll back).  No-op on a memory
        environment.
        """
        if self.durable:
            with span("storage.fold", shard=self.obs_shard):
                self.disk.checkpoint(self._commit_payload(self._app_state))
            sink = self.event_sink if self.event_sink is not None else EVENTS
            sink.emit("checkpoint", shard=self.obs_shard,
                      batch=self.committed_batches)

    def close(self, app_state: Any = None) -> None:
        """Checkpoint (when durable) and release every handle, idempotently.

        Closing twice is fine, as is closing after :meth:`crash` (the crash
        already dropped the file handles; nothing is re-opened or re-closed).
        The lifecycle lock makes concurrent teardown safe: exactly one caller
        performs the checkpoint-and-close, so an executor pool shutting down
        while a context manager exits can never double-close the WAL file
        handle.  Operations on a closed environment raise
        :class:`~repro.errors.StoreClosedError`.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            if self.durable and not self.disk.closed:
                self.checkpoint(app_state=app_state)
                self.disk.close()
            for store in self._kvstores.values():
                store.close()
            self._closed = True

    def __enter__(self) -> "StorageEnvironment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # After an exception the in-memory state may be mid-operation; a
        # checkpoint would persist it as if committed.  Crash-close instead:
        # the WAL guarantees recovery to the last commit.
        if exc_type is not None and self.durable:
            self.crash()
        else:
            self.close()

    def crash(self) -> None:
        """Simulate a crash: drop file handles without committing anything.

        Work since the last :meth:`commit` is lost; recovery through
        :func:`repro.storage.persistence.open_environment` replays the WAL to
        the last committed batch boundary.  On a memory environment this just
        marks the environment closed.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            if self.durable and not self.disk.closed:
                self.disk.close()
            for store in self._kvstores.values():
                store.close()
            self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` (or :meth:`crash`) has been called."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("the storage environment is closed")

    # -- fault injection ---------------------------------------------------------

    def inject_faults(self, plan: Any, shard: "int | None" = None) -> None:
        """Attach a :class:`~repro.storage.faults.FaultPlan` to this environment.

        One injector instance is shared by the disk and (when durable) the
        write-ahead log, so every injection site draws from the same
        deterministic per-op occurrence counters.  ``shard`` names the failure
        domain tagged onto escalated hard errors.
        """
        from repro.storage.faults import FaultInjector

        self._check_open()
        injector = FaultInjector(plan, shard=shard) if plan.enabled else None
        self.disk.fault_injector = injector
        wal = getattr(self.disk, "wal", None)
        if wal is not None:
            wal.fault_injector = injector

    def clear_faults(self) -> None:
        """Detach any fault injector (every site back on the fast path)."""
        self.disk.fault_injector = None
        wal = getattr(self.disk, "wal", None)
        if wal is not None:
            wal.fault_injector = None

    def fault_stats(self) -> Any:
        """The attached injector's :class:`~repro.storage.faults.FaultStats`
        (``None`` when no injector is attached)."""
        injector = self.disk.fault_injector
        return injector.stats if injector is not None else None

    def scrub(self) -> Any:
        """Verify per-page checksums of data at rest (durable backend only).

        Returns a :class:`~repro.storage.persistence.file_disk.ScrubReport`;
        ``None`` on a memory environment, which has no data at rest to rot.
        """
        self._check_open()
        scrub = getattr(self.disk, "scrub", None)
        return scrub() if scrub is not None else None

    # -- store management -------------------------------------------------------

    def create_kvstore(self, name: str, order: int | None = None) -> KVStore:
        """Create (or raise if it exists) a named ordered key-value store."""
        self._check_open()
        if name in self._kvstores or name in self._heapfiles:
            raise StorageError(f"store {name!r} already exists")
        store = KVStore(self.pool, name=name, order=order)
        self._kvstores[name] = store
        return store

    def create_heapfile(self, name: str) -> HeapFile:
        """Create (or raise if it exists) a named heap file."""
        self._check_open()
        if name in self._kvstores or name in self._heapfiles:
            raise StorageError(f"store {name!r} already exists")
        heap = HeapFile(self.pool, name=name)
        self._heapfiles[name] = heap
        return heap

    def kvstore(self, name: str) -> KVStore:
        """Look up an existing key-value store by name."""
        store = self._kvstores.get(name)
        if store is None:
            raise StorageError(f"unknown kv store {name!r}")
        return store

    def heapfile(self, name: str) -> HeapFile:
        """Look up an existing heap file by name."""
        heap = self._heapfiles.get(name)
        if heap is None:
            raise StorageError(f"unknown heap file {name!r}")
        return heap

    def store_names(self) -> list[str]:
        """Names of all stores (key-value stores and heap files)."""
        return sorted([*self._kvstores, *self._heapfiles])

    def kvstore_names(self) -> list[str]:
        """Names of the ordered key-value stores only.

        The batch-equivalence harness snapshots every key-value store to
        compare batched against sequential application; heap files (immutable
        long lists) are excluded because score updates never rewrite them.
        """
        return sorted(self._kvstores)

    # -- statistics --------------------------------------------------------------

    def snapshot(self) -> IOSnapshot:
        """Capture the current disk and buffer-pool counters."""
        return IOSnapshot(disk=self.disk.stats.snapshot(), pool=self.pool.stats.snapshot())

    def delta_since(self, earlier: IOSnapshot) -> IODelta:
        """Counter deltas since ``earlier``."""
        return IODelta(
            disk=self.disk.stats.diff(earlier.disk),
            pool=self.pool.stats.diff(earlier.pool),
        )

    def reset_stats(self) -> None:
        """Zero all disk and buffer-pool counters."""
        self.disk.stats.reset()
        self.pool.stats.reset()

    def drop_cache(self) -> None:
        """Evict every cached page (flushing dirty pages first)."""
        self.pool.drop()

    def total_size_bytes(self) -> int:
        """Serialized size of all stores, in bytes."""
        total = sum(store.size_bytes() for store in self._kvstores.values())
        total += sum(heap.total_bytes() for heap in self._heapfiles.values())
        return total
