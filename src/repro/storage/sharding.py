"""Term-partitioned storage: N independent environments behind one facade.

The paper runs every index method against a single BerkeleyDB-style
environment; a production deployment serving heavy mixed query/update traffic
partitions the term space across several environments, each with its own
buffer pool, so that hot terms do not evict each other's working sets and
per-shard load can be measured (and rebalanced).  This module provides that
layer while keeping the single-environment behaviour bit-for-bit reachable:

* :func:`shard_of_term` / :func:`shard_of_doc` — deterministic routing that
  does **not** depend on ``PYTHONHASHSEED`` (CRC-32 of the term bytes, modulo
  arithmetic on document ids), so a layout built today is the layout built in
  any future process.
* :class:`ShardedEnvironment` — ``shard_count`` private
  :class:`~repro.storage.environment.StorageEnvironment` instances (one
  simulated disk + buffer pool each; the page cache budget is split across
  them) plus a catalogue of *logical* stores.
* :class:`ShardedKVStore` / :class:`ShardedHeapFile` — store facades with the
  ``KVStore``/``HeapFile`` API that route every keyed operation to the shard
  owning the key and merge cross-shard scans in key order.

Accounting policy: routing is computed from the key alone — the facades never
probe shards to locate data, so no hit/miss/eviction/disk counter is ever
charged twice, and aggregate statistics are the **per-category sum** of the
per-shard counters.  Because sums of snapshots are linear,
``delta_since(snapshot)`` on the aggregate equals the per-category sum of the
per-shard deltas.  With ``shard_count == 1`` every facade operation delegates
1:1 to the single underlying store, which is what makes the sharded engine
fingerprint-identical to the classic single-environment layout (pinned by
``tests/core/test_shard_invariance.py``).
"""

from __future__ import annotations

import heapq
import os
import pickle
import threading
import zlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.buffer_pool import BufferPoolStats
from repro.storage.disk import DiskStats
from repro.storage.environment import IODelta, IOSnapshot, StorageEnvironment
from repro.storage.heap_file import HeapFile, SegmentHandle
from repro.storage.kvstore import Cursor, KVStore
from repro.storage.pager import PAGE_SIZE


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


def shard_of_term(term: str, shard_count: int) -> int:
    """Deterministic term → shard mapping (CRC-32, ``PYTHONHASHSEED``-proof)."""
    if shard_count <= 1:
        return 0
    return zlib.crc32(term.encode("utf-8")) % shard_count


def shard_of_doc(doc_id: int, shard_count: int) -> int:
    """Deterministic document-id → shard mapping."""
    if shard_count <= 1:
        return 0
    return int(doc_id) % shard_count


def _first_component(key: Any) -> Any:
    return key[0] if isinstance(key, tuple) else key


#: Named routing policies for :meth:`ShardedEnvironment.create_kvstore`:
#: ``"term"`` routes on the (first component of the) key as a term string,
#: ``"doc"`` on the key as a document id.
_KEY_SHARD_POLICIES: dict[str, Callable[[Any, int], int]] = {
    "term": lambda key, count: shard_of_term(_first_component(key), count),
    "doc": lambda key, count: shard_of_doc(_first_component(key), count),
}


#: Root-level metadata file of a durable sharded environment.
_REGISTRY_FILE = "sharded.pkl"


def _shard_path(path: "str | None", index: int) -> "str | None":
    """Per-shard directory inside a durable sharded environment's root."""
    if path is None:
        return None
    return os.path.join(path, f"shard-{index:04d}")


def _resolve_policy(key_shard: str) -> Callable[[Any, int], int]:
    policy = _KEY_SHARD_POLICIES.get(key_shard)
    if policy is None:
        raise StorageError(
            f"unknown key_shard policy {key_shard!r}; "
            f"available: {sorted(_KEY_SHARD_POLICIES)}"
        )
    return policy


# ---------------------------------------------------------------------------
# Load / skew reporting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardLoad:
    """Per-shard load counters plus the skew summary experiments report.

    ``skew`` is ``max / mean`` of per-shard buffer-pool accesses: 1.0 means
    perfectly balanced, ``shard_count`` means one shard absorbed everything.
    """

    accesses: tuple[int, ...]
    page_reads: tuple[int, ...]
    page_writes: tuple[int, ...]

    @property
    def shard_count(self) -> int:
        return len(self.accesses)

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses)

    @property
    def skew(self) -> float:
        total = self.total_accesses
        if total == 0 or not self.accesses:
            return 1.0
        mean = total / len(self.accesses)
        return max(self.accesses) / mean

    def diff(self, earlier: "ShardLoad") -> "ShardLoad":
        """Per-shard counter deltas since ``earlier`` (same shard count)."""
        if earlier.shard_count != self.shard_count:
            raise StorageError(
                f"cannot diff loads over {earlier.shard_count} and "
                f"{self.shard_count} shards"
            )
        return ShardLoad(
            accesses=tuple(now - then for now, then
                           in zip(self.accesses, earlier.accesses)),
            page_reads=tuple(now - then for now, then
                             in zip(self.page_reads, earlier.page_reads)),
            page_writes=tuple(now - then for now, then
                              in zip(self.page_writes, earlier.page_writes)),
        )

    def as_row(self) -> dict[str, float | int]:
        """Flat representation for experiment tables."""
        return {
            "shards": self.shard_count,
            "total_accesses": self.total_accesses,
            "skew": round(self.skew, 4),
        }


def shard_load(env: "StorageEnvironment | ShardedEnvironment") -> ShardLoad:
    """Lifetime per-shard load of any environment (single env = one shard).

    Reads existing counters only (no page access), so measuring never
    perturbs the measured workload.
    """
    if isinstance(env, ShardedEnvironment):
        shards = env.shards
    else:
        shards = [env]
    return ShardLoad(
        accesses=tuple(shard.pool.stats.accesses for shard in shards),
        page_reads=tuple(shard.disk.stats.reads for shard in shards),
        page_writes=tuple(shard.disk.stats.writes for shard in shards),
    )


# ---------------------------------------------------------------------------
# Store facades
# ---------------------------------------------------------------------------


class ShardedKVStore:
    """The ``KVStore`` API routed across one store per shard.

    Point operations go straight to the shard owning the key; bulk operations
    partition the (caller-sorted) batch into per-shard subsequences — which
    stay sorted, so each shard still gets one sorted bulk pass; cross-shard
    scans merge the per-shard streams in key order.  With a single part every
    call delegates 1:1, adding no accounting and no reordering.
    """

    def __init__(self, name: str,
                 parts: Sequence[tuple[StorageEnvironment, KVStore]],
                 route: Callable[[Any], int]) -> None:
        if not parts:
            raise StorageError(f"sharded store {name!r} needs at least one part")
        self.name = name
        self._envs = [env for env, _store in parts]
        self._parts = [store for _env, store in parts]
        self._route = route
        self._single = self._parts[0] if len(self._parts) == 1 else None
        #: Executor pool + per-shard latches, set by the environment when a
        #: parallel execution context attaches (see ``attach_execution``).
        self._exec_pool = None
        self._latches: "Sequence[threading.RLock] | None" = None

    # -- concurrent execution ----------------------------------------------------

    def _attach_execution(self, pool, latches) -> None:
        """Enable parallel bulk fan-out and point-read latching.

        ``pool`` owns one single-writer executor per shard; bulk operations
        scatter their per-shard buckets onto it.  ``latches`` (one re-entrant
        lock per shard) serialize the *brief* point reads coordinator threads
        perform during a query merge against block scans running on the same
        shard's executor.  With ``None``/``None`` the facade behaves exactly
        as before — the serial engine never pays for any of this.
        """
        self._exec_pool = pool
        self._latches = latches

    def _latch(self, shard: int):
        if self._latches is None:
            return nullcontext()
        return self._latches[shard]

    # -- routing ---------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._parts)

    def shard_of(self, key: Any) -> int:
        """The shard index that owns ``key``."""
        if self._single is not None:
            return 0
        return self._route(key)

    def shard_store(self, shard: int) -> KVStore:
        """The underlying per-shard store (tests and skew reports)."""
        return self._parts[shard]

    def _part(self, key: Any) -> KVStore:
        if self._single is not None:
            return self._single
        return self._parts[self._route(key)]

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        for part in self._parts:
            part.close()

    @property
    def closed(self) -> bool:
        return all(part.closed for part in self._parts)

    # -- point operations ------------------------------------------------------
    # Each computes the owning shard once; the latch branch costs nothing on
    # the serial engine (``_latches is None``) and one C-level RLock round
    # trip under the concurrent router.  These are the hottest facade calls
    # (every candidate's score/deleted lookup during a query merge).

    def put(self, key: Any, value: Any) -> None:
        shard = 0 if self._single is not None else self._route(key)
        if self._latches is None:
            self._parts[shard].put(key, value)
        else:
            with self._latches[shard]:
                self._parts[shard].put(key, value)

    def get(self, key: Any, default: Any = ...) -> Any:
        shard = 0 if self._single is not None else self._route(key)
        if self._latches is None:
            return self._parts[shard].get(key, default=default)
        with self._latches[shard]:
            return self._parts[shard].get(key, default=default)

    def delete(self, key: Any) -> Any:
        shard = 0 if self._single is not None else self._route(key)
        if self._latches is None:
            return self._parts[shard].delete(key)
        with self._latches[shard]:
            return self._parts[shard].delete(key)

    def delete_if_present(self, key: Any) -> bool:
        shard = 0 if self._single is not None else self._route(key)
        if self._latches is None:
            return self._parts[shard].delete_if_present(key)
        with self._latches[shard]:
            return self._parts[shard].delete_if_present(key)

    def contains(self, key: Any) -> bool:
        shard = 0 if self._single is not None else self._route(key)
        if self._latches is None:
            return self._parts[shard].contains(key)
        with self._latches[shard]:
            return self._parts[shard].contains(key)

    def __contains__(self, key: Any) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        total = 0
        for shard, part in enumerate(self._parts):
            with self._latch(shard):
                total += len(part)
        return total

    # -- bulk operations -------------------------------------------------------

    def _scatter_bulk(self, operation: "Callable[[KVStore, list], int]",
                      buckets: "list[list]") -> int:
        """Run one bulk operation's per-shard buckets, in parallel when attached.

        Each shard receives exactly the bucket (and bucket order) the serial
        loop would have given it, and a shard's work runs entirely on the
        executor owning it — so per-shard page layouts and accounting are
        identical to serial execution, and the aggregate counters (per-category
        sums) are fingerprint-identical however many threads are active.
        """
        pool = self._exec_pool
        if pool is None or not pool.parallel or not pool.scatter:
            # Serial engine, or a saturated host where an executor hop cannot
            # overlap with anything: apply the buckets inline (latched when a
            # concurrent context is attached), in shard order like the
            # scatter path's gather order.
            total = 0
            for shard, bucket in enumerate(buckets):
                if bucket:
                    with self._latch(shard):
                        total += operation(self._parts[shard], bucket)
            return total

        def shard_task(shard: int, bucket: list) -> Callable[[], int]:
            def run() -> int:
                with self._latch(shard):
                    return operation(self._parts[shard], bucket)
            return run

        counts = pool.map_shards(
            (shard, shard_task(shard, bucket))
            for shard, bucket in enumerate(buckets)
            if bucket
        )
        return sum(counts)

    def put_many(self, items: "Iterable[tuple[Any, Any]]") -> int:
        if self._single is not None:
            with self._latch(0):
                return self._single.put_many(items)
        buckets: list[list[tuple[Any, Any]]] = [[] for _ in self._parts]
        for key, value in items:
            buckets[self._route(key)].append((key, value))
        return self._scatter_bulk(lambda part, bucket: part.put_many(bucket), buckets)

    def delete_many(self, keys: "Iterable[Any]", ignore_missing: bool = False) -> int:
        if self._single is not None:
            with self._latch(0):
                return self._single.delete_many(keys, ignore_missing=ignore_missing)
        buckets: list[list[Any]] = [[] for _ in self._parts]
        for key in keys:
            buckets[self._route(key)].append(key)
        return self._scatter_bulk(
            lambda part, bucket: part.delete_many(bucket, ignore_missing=ignore_missing),
            buckets,
        )

    # -- range operations --------------------------------------------------------

    def _part_scan(self, shard: int, make_iterator: "Callable[[KVStore], Iterator]"):
        """One part's range scan, isolated from concurrent shard access.

        A term-scan plan executing on the shard's executor already holds the
        shard latch for *every* advance (the stream pump wraps each block
        pull), so the scan stays lazy there — early termination keeps its
        serial I/O profile.  A scan from any other thread (fancy-list loads
        and contents checks on a coordinator) cannot hold a lock across
        ``next()`` calls, so it trades laziness for isolation and
        materializes under the latch; those scans are small and fully
        consumed anyway.
        """
        if self._latches is None:
            return make_iterator(self._parts[shard])
        latch = self._latches[shard]
        if latch._is_owned():  # executor/pump context: latched per advance
            return make_iterator(self._parts[shard])
        with latch:
            return iter(list(make_iterator(self._parts[shard])))

    def items(self, low: Any = None, high: Any = None) -> Iterator[tuple[Any, Any]]:
        if self._single is not None:
            return self._part_scan(0, lambda part: part.items(low=low, high=high))
        return heapq.merge(
            *(self._part_scan(shard, lambda part: part.items(low=low, high=high))
              for shard in range(len(self._parts))),
            key=lambda pair: pair[0],
        )

    def prefix_items(self, prefix: Any) -> Iterator[tuple[Any, Any]]:
        """Prefix scan; the prefix must pin the routing component (it does for
        every per-term short list, whose keys lead with the term)."""
        if self._single is not None:
            return self._part_scan(0, lambda part: part.prefix_items(prefix))
        shard = self._route(tuple(prefix))
        return self._part_scan(shard, lambda part: part.prefix_items(prefix))

    def cursor(self, low: Any = None, high: Any = None,
               inclusive: tuple[bool, bool] = (True, True)) -> Cursor:
        if self._single is not None:
            with self._latch(0):
                return self._single.cursor(low=low, high=high, inclusive=inclusive)
        return Cursor(
            iterator=heapq.merge(
                *(self._part_scan(
                    shard,
                    lambda part: part.cursor(low=low, high=high, inclusive=inclusive))
                  for shard in range(len(self._parts))),
                key=lambda pair: pair[0],
            )
        )

    # -- statistics ----------------------------------------------------------------

    def size_bytes(self) -> int:
        total = 0
        for shard, part in enumerate(self._parts):
            with self._latch(shard):
                total += part.size_bytes()
        return total

    def drop_from_cache(self, accounted: bool = False) -> None:
        """Evict this store's pages from every shard's buffer pool.

        ``accounted=True`` charges each shard's page enumeration like a normal
        read sequence (the Score method's cold-cache ritual); the drop itself
        is free, exactly as in the single-pool engine.
        """
        for env, part in zip(self._envs, self._parts):
            env.pool.drop(part.page_ids(accounted=accounted))

    def _replace_part(self, shard: int, env: StorageEnvironment,
                      store: KVStore) -> None:
        """Swap in a recovered shard's environment and store (shard reopen)."""
        self._envs[shard] = env
        self._parts[shard] = store
        if len(self._parts) == 1:
            self._single = store


@dataclass(frozen=True)
class ShardedSegmentHandle:
    """A heap-file segment handle tagged with the shard that stores it."""

    shard: int
    handle: SegmentHandle

    @property
    def length(self) -> int:
        return self.handle.length

    @property
    def page_count(self) -> int:
        return self.handle.page_count


class ShardedHeapFile:
    """The ``HeapFile`` API with per-term segment routing.

    ``write`` takes the routing key (the term whose long list the payload is)
    and returns a :class:`ShardedSegmentHandle`; reads dispatch on the handle's
    shard tag, so early-terminating scans behave exactly as before.
    """

    def __init__(self, name: str,
                 parts: Sequence[tuple[StorageEnvironment, HeapFile]],
                 route: Callable[[Any], int]) -> None:
        if not parts:
            raise StorageError(f"sharded heap file {name!r} needs at least one part")
        self.name = name
        self._envs = [env for env, _heap in parts]
        self._parts = [heap for _env, heap in parts]
        self._route = route
        self._exec_pool = None
        self._latches: "Sequence[threading.RLock] | None" = None

    def _attach_execution(self, pool, latches) -> None:
        """Record the execution context (see ``ShardedKVStore._attach_execution``).

        Heap segments are immutable and only ever scanned inside term-scan
        plans (which run on the owning shard's executor) or mutated under the
        router's writer exclusivity, so the heap facade needs no per-operation
        latching; the context is kept for the whole-segment ``read`` path.
        """
        self._exec_pool = pool
        self._latches = latches

    @property
    def shard_count(self) -> int:
        return len(self._parts)

    def shard_heap(self, shard: int) -> HeapFile:
        """The underlying per-shard heap file (tests and skew reports)."""
        return self._parts[shard]

    def write(self, payload: bytes, key: Any = None) -> ShardedSegmentHandle:
        if len(self._parts) == 1:
            shard = 0
        elif key is None:
            raise StorageError(
                f"sharded heap file {self.name!r} needs a routing key to write"
            )
        else:
            shard = self._route(key)
        return ShardedSegmentHandle(shard=shard, handle=self._parts[shard].write(payload))

    def read(self, handle: ShardedSegmentHandle) -> bytes:
        if self._latches is not None:
            with self._latches[handle.shard]:
                return self._parts[handle.shard].read(handle.handle)
        return self._parts[handle.shard].read(handle.handle)

    def iter_pages(self, handle: ShardedSegmentHandle,
                   start_byte: int = 0) -> Iterator[bytes]:
        return self._parts[handle.shard].iter_pages(handle.handle,
                                                    start_byte=start_byte)

    def peek_pages(self, handle: ShardedSegmentHandle) -> Iterator[bytes]:
        return self._parts[handle.shard].peek_pages(handle.handle)

    def delete(self, handle: ShardedSegmentHandle) -> None:
        self._parts[handle.shard].delete(handle.handle)

    def drop_from_cache(self) -> None:
        for part in self._parts:
            part.drop_from_cache()

    def _replace_part(self, shard: int, env: StorageEnvironment,
                      heap: HeapFile) -> None:
        """Swap in a recovered shard's environment and heap (shard reopen)."""
        self._envs[shard] = env
        self._parts[shard] = heap

    @property
    def segment_count(self) -> int:
        return sum(part.segment_count for part in self._parts)

    def total_bytes(self) -> int:
        return sum(part.total_bytes() for part in self._parts)

    def total_pages(self) -> int:
        return sum(part.total_pages() for part in self._parts)


# ---------------------------------------------------------------------------
# The sharded environment
# ---------------------------------------------------------------------------


class ShardedEnvironment:
    """N private storage environments behind the ``StorageEnvironment`` API.

    Parameters
    ----------
    shard_count:
        Number of term-space partitions.  1 is a valid (and fingerprint-
        identical) degenerate case.
    cache_pages:
        **Total** buffer-pool budget; split as evenly as possible across the
        shards (remainder pages go to the lowest-numbered shards, minimum one
        page each) so that changing the shard count never changes the memory
        the engine is allowed to use.
    page_size:
        Page size shared by every shard.
    """

    def __init__(self, shard_count: int = 1, cache_pages: int = 4096,
                 page_size: int = PAGE_SIZE, path: str | None = None) -> None:
        if shard_count < 1:
            raise StorageError(f"shard_count must be at least 1, got {shard_count}")
        self.shard_count = shard_count
        self.cache_pages = cache_pages
        self.page_size = page_size
        self.path = path
        self.recovered = False
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._exec_pool = None
        #: One re-entrant latch per shard once a parallel execution context is
        #: attached (``None`` on the serial engine).
        self.shard_latches: "list[threading.RLock] | None" = None
        if path is not None:
            os.makedirs(path, exist_ok=True)
        base, remainder = divmod(cache_pages, shard_count)
        self.shards = [
            StorageEnvironment(
                cache_pages=max(1, base + (1 if index < remainder else 0)),
                page_size=page_size,
                path=_shard_path(path, index),
            )
            for index in range(shard_count)
        ]
        for index, shard in enumerate(self.shards):
            shard.obs_shard = index
        self._kvstores: dict[str, ShardedKVStore] = {}
        self._heapfiles: dict[str, ShardedHeapFile] = {}
        #: Logical store registry: name -> (kind, key_shard, order).  Persisted
        #: so recovery can rebuild the routing facades around the per-shard
        #: stores each shard's own catalog restores.
        self._store_policies: dict[str, tuple[str, str, "int | None"]] = {}
        if path is not None:
            self._write_registry()

    # -- durability ---------------------------------------------------------------

    @property
    def durable(self) -> bool:
        """Whether the shards persist pages to files (one directory each)."""
        return self.path is not None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def committed_batches(self) -> int:
        """Group commits so far (shard 0 carries the commit point)."""
        return self.shards[0].committed_batches

    @property
    def recovered_app_state(self) -> Any:
        """Application blob recovered with shard 0's last commit."""
        return self.shards[0].recovered_app_state

    def _write_registry(self) -> None:
        registry = {
            "shard_count": self.shard_count,
            "cache_pages": self.cache_pages,
            "page_size": self.page_size,
            "stores": {
                name: {"kind": kind, "key_shard": key_shard, "order": order}
                for name, (kind, key_shard, order) in self._store_policies.items()
            },
        }
        tmp = os.path.join(self.path, _REGISTRY_FILE + ".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(registry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, os.path.join(self.path, _REGISTRY_FILE))
        from repro.storage.persistence.file_disk import fsync_directory

        fsync_directory(self.path)

    def commit(self, app_state: Any = None,
               skip: "Iterable[int]" = ()) -> int:
        """Group-commit every shard; shard 0 (committed last) carries the blob.

        Shard 0's ``COMMIT`` record is the batch's commit point: it is written
        only after every other shard has durably committed, so recovering all
        shards to their own last commit yields a consistent batch boundary
        whenever the crash fell outside this fan-out window.  (A crash *inside*
        the window can leave shards one batch apart — the restart workload
        injects crashes between batches, where the boundary is exact.)

        ``skip`` names quarantined shard indices excluded from the fan-out
        (degraded commit): a skipped shard simply falls behind shard 0's batch
        counter, which recovery accepts (only a shard *ahead* of shard 0
        indicates a torn fan-out).  Shard 0 is the commit point and can never
        be skipped.
        """
        skipped = set(skip)
        if 0 in skipped:
            raise StorageError(
                "shard 0 carries the commit point and cannot be skipped; "
                "reopen it before committing"
            )
        for index, shard in enumerate(self.shards[1:], start=1):
            if index not in skipped:
                shard.commit()
        return self.shards[0].commit(app_state=app_state)

    def checkpoint(self, app_state: Any = None,
                   skip: "Iterable[int]" = ()) -> int:
        """Checkpoint every shard (commit, fold WAL into the paged file).

        Two-phase: first the normal commit fan-out reaches the batch boundary
        on every shard (shard 0's record last, as the commit point), and only
        then does each shard fold its log into its paged file.  A crash or an
        injected storage fault during a fold therefore finds every shard at
        the *same* committed batch with its log intact — recoverable — rather
        than one shard compacted ahead of a commit point that never got
        written, which no replay could roll back.

        ``skip`` excludes quarantined shards, as in :meth:`commit`.
        """
        batch = self.commit(app_state=app_state, skip=skip)
        skipped = set(skip)
        for index, shard in enumerate(self.shards):
            if index not in skipped:
                shard.fold()
        return batch

    def close(self, app_state: Any = None) -> None:
        """Checkpoint (when durable) and close every shard.

        Idempotent and safe under concurrent teardown: the lifecycle lock
        makes exactly one caller perform the shard close fan-out, so an
        executor pool shutting down while ``__exit__`` runs (or a ``close``
        racing a ``crash``) can never double-close a shard's WAL handle.
        Closing after :meth:`crash` is a no-op.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            for shard in self.shards[1:]:
                shard.close()
            self.shards[0].close(app_state=app_state)
            self._closed = True

    def crash(self) -> None:
        """Simulate a crash on every shard (nothing committed, handles dropped).

        Idempotent and thread-safe like :meth:`close`; crashing after a close
        (or a second crash) is a no-op.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            for shard in self.shards:
                shard.crash()
            self._closed = True

    def __enter__(self) -> "ShardedEnvironment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self.durable:
            self.crash()
        else:
            self.close()

    @classmethod
    def from_recovery(cls, path: str, shards: "list[StorageEnvironment]",
                      registry: dict) -> "ShardedEnvironment":
        """Rebuild a sharded environment around recovered per-shard environments."""
        env = cls.__new__(cls)
        env.shard_count = registry["shard_count"]
        env.cache_pages = registry["cache_pages"]
        env.page_size = registry["page_size"]
        env.path = path
        env.recovered = True
        env._closed = False
        env._lifecycle_lock = threading.Lock()
        env._exec_pool = None
        env.shard_latches = None
        env.shards = shards
        for index, shard in enumerate(shards):
            shard.obs_shard = index
        env._kvstores = {}
        env._heapfiles = {}
        env._store_policies = {}
        for name, spec in registry["stores"].items():
            policy = _resolve_policy(spec["key_shard"])
            count = env.shard_count
            route = (lambda p: lambda key: p(key, count))(policy)
            if spec["kind"] == "kv":
                parts = [(shard, shard.kvstore(name)) for shard in shards]
                env._kvstores[name] = ShardedKVStore(name, parts, route=route)
            else:
                parts = [(shard, shard.heapfile(name)) for shard in shards]
                env._heapfiles[name] = ShardedHeapFile(name, parts, route=route)
            env._store_policies[name] = (spec["kind"], spec["key_shard"], spec["order"])
        return env

    # -- routing ---------------------------------------------------------------

    def shard_of_term(self, term: str) -> int:
        """The shard owning a term's lists (the resolver queries route through)."""
        return shard_of_term(term, self.shard_count)

    # -- fault injection ---------------------------------------------------------

    def inject_faults(self, plan: Any) -> None:
        """Attach a fault plan to every shard, each with its own derived seed.

        Per-shard seeds (see :meth:`repro.storage.faults.FaultPlan.for_shard`)
        keep shard schedules independent, and escalated hard errors carry the
        shard index as their failure-domain tag — the router's quarantine
        attribution.
        """
        for index, shard in enumerate(self.shards):
            shard.inject_faults(plan.for_shard(index), shard=index)

    def clear_faults(self) -> None:
        """Detach every shard's injector."""
        for shard in self.shards:
            shard.clear_faults()

    def fault_stats(self) -> Any:
        """Aggregated :class:`~repro.storage.faults.FaultStats` across shards
        (``None`` when no shard has an injector attached)."""
        from repro.storage.faults import merged_fault_stats

        stats = [s for s in (shard.fault_stats() for shard in self.shards)
                 if s is not None]
        return merged_fault_stats(stats) if stats else None

    def scrub(self) -> list:
        """Per-shard checksum scrub reports, in shard order (durable only)."""
        return [shard.scrub() for shard in self.shards]

    def reopen_shard(self, index: int) -> StorageEnvironment:
        """Crash one shard and recover it from its own checkpoint + WAL.

        The quarantine re-admission path: the shard's environment is replaced
        by a fresh recovery to its last committed batch, and every store
        facade is re-pointed at the recovered per-shard stores — facade
        objects (and therefore the index methods holding them) stay stable.
        Durable environments only; a memory shard has no durable state to
        recover from.
        """
        if not self.durable:
            raise StorageError(
                "reopen_shard requires a durable environment; a memory shard "
                "has no checkpoint to recover from"
            )
        if not 0 <= index < self.shard_count:
            raise StorageError(
                f"shard index {index} out of range for {self.shard_count} shards"
            )
        from repro.storage.persistence import open_environment

        old = self.shards[index]
        cache_pages = old.cache_pages
        old.crash()
        env = open_environment(_shard_path(self.path, index),
                               cache_pages=cache_pages)
        env.obs_shard = index
        self.shards[index] = env
        for name, (kind, _key_shard, _order) in self._store_policies.items():
            if kind == "kv":
                self._kvstores[name]._replace_part(index, env, env.kvstore(name))
            else:
                self._heapfiles[name]._replace_part(index, env, env.heapfile(name))
        return env

    # -- concurrent execution -----------------------------------------------------

    def attach_execution(self, pool) -> None:
        """Attach an executor pool: parallel bulk fan-out + per-shard latches.

        Called by the concurrent :class:`~repro.core.index_router.IndexRouter`.
        Every existing and future store facade gains (a) scatter/gather bulk
        operations on the pool's single-writer shard executors and (b) a
        per-shard latch serializing coordinator point reads against executor
        block scans.  Attaching an inline (``threads<=1``) pool is a no-op, so
        the serial engine never takes a lock or touches a queue.
        """
        if not getattr(pool, "parallel", False):
            return
        self._exec_pool = pool
        if self.shard_latches is None:
            self.shard_latches = [threading.RLock() for _ in self.shards]
        for store in self._kvstores.values():
            store._attach_execution(pool, self.shard_latches)
        for heap in self._heapfiles.values():
            heap._attach_execution(pool, self.shard_latches)

    # -- store management -------------------------------------------------------

    def create_kvstore(self, name: str, order: int | None = None,
                       key_shard: str = "term") -> ShardedKVStore:
        """Create a logical key-value store partitioned by ``key_shard``.

        ``key_shard`` names the routing policy: ``"term"`` for stores keyed by
        ``(term, ...)`` tuples, ``"doc"`` for stores keyed by document id.
        """
        if name in self._kvstores or name in self._heapfiles:
            raise StorageError(f"store {name!r} already exists")
        policy = _resolve_policy(key_shard)
        parts = [(shard, shard.create_kvstore(name, order=order)) for shard in self.shards]
        count = self.shard_count
        store = ShardedKVStore(name, parts, route=lambda key: policy(key, count))
        if self._exec_pool is not None:
            store._attach_execution(self._exec_pool, self.shard_latches)
        self._kvstores[name] = store
        self._store_policies[name] = ("kv", key_shard, order)
        if self.durable:
            self._write_registry()
        return store

    def create_heapfile(self, name: str, key_shard: str = "term") -> ShardedHeapFile:
        """Create a logical heap file whose segments are routed by ``key_shard``."""
        if name in self._kvstores or name in self._heapfiles:
            raise StorageError(f"store {name!r} already exists")
        policy = _resolve_policy(key_shard)
        parts = [(shard, shard.create_heapfile(name)) for shard in self.shards]
        count = self.shard_count
        heap = ShardedHeapFile(name, parts, route=lambda key: policy(key, count))
        if self._exec_pool is not None:
            heap._attach_execution(self._exec_pool, self.shard_latches)
        self._heapfiles[name] = heap
        self._store_policies[name] = ("heap", key_shard, None)
        if self.durable:
            self._write_registry()
        return heap

    def kvstore(self, name: str) -> ShardedKVStore:
        store = self._kvstores.get(name)
        if store is None:
            raise StorageError(f"unknown kv store {name!r}")
        return store

    def heapfile(self, name: str) -> ShardedHeapFile:
        heap = self._heapfiles.get(name)
        if heap is None:
            raise StorageError(f"unknown heap file {name!r}")
        return heap

    def store_names(self) -> list[str]:
        """Names of all logical stores (each once, however many shards back it)."""
        return sorted([*self._kvstores, *self._heapfiles])

    def kvstore_names(self) -> list[str]:
        """Names of the logical ordered key-value stores only."""
        return sorted(self._kvstores)

    # -- statistics --------------------------------------------------------------

    def snapshot(self) -> IOSnapshot:
        """Aggregate snapshot: per-category sums of the per-shard counters."""
        return IOSnapshot(
            disk=DiskStats.sum_of(shard.disk.stats for shard in self.shards),
            pool=BufferPoolStats.sum_of(shard.pool.stats for shard in self.shards),
        )

    def delta_since(self, earlier: IOSnapshot) -> IODelta:
        """Aggregate deltas; equals the per-category sum of per-shard deltas."""
        current = self.snapshot()
        return IODelta(
            disk=current.disk.diff(earlier.disk),
            pool=current.pool.diff(earlier.pool),
        )

    def shard_snapshots(self) -> list[IOSnapshot]:
        """One :class:`IOSnapshot` per shard, in shard order."""
        return [shard.snapshot() for shard in self.shards]

    def shard_deltas(self, earlier: Sequence[IOSnapshot]) -> list[IODelta]:
        """Per-shard deltas since :meth:`shard_snapshots`."""
        if len(earlier) != self.shard_count:
            raise StorageError(
                f"expected {self.shard_count} shard snapshots, got {len(earlier)}"
            )
        return [
            shard.delta_since(snapshot)
            for shard, snapshot in zip(self.shards, earlier)
        ]

    def shard_load(self) -> ShardLoad:
        """Lifetime per-shard load and skew (see :func:`shard_load`)."""
        return shard_load(self)

    def reset_stats(self) -> None:
        for shard in self.shards:
            shard.reset_stats()

    def drop_cache(self) -> None:
        for shard in self.shards:
            shard.drop_cache()

    def total_size_bytes(self) -> int:
        return sum(shard.total_size_bytes() for shard in self.shards)
