"""Page abstraction for the simulated storage engine.

A :class:`Page` is a fixed-capacity container of bytes identified by an integer
page id.  The storage engine never hands raw byte offsets to higher layers;
instead, components serialise their payloads (posting runs, B+-tree nodes)
into pages and the disk/buffer-pool layers count how many pages an operation
touches.  That page count is the quantity the paper's performance arguments
are about, so keeping it explicit is the whole point of this module.

Pages additionally carry a *decoded-object slot*: a cached, already-decoded
view of the page payload (for B+-tree pages, the node) together with the
encoder that can serialise it back.  The slot lets the tree decode a page once
per buffer-pool residency instead of once per access; serialisation happens
only when the page must become bytes again (disk write-back on eviction or
flush).  The slot is pure CPU-side caching — it never changes which pages are
read or written, so the simulated I/O accounting is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import PageError

#: Default page size in bytes.  BerkeleyDB's default is 4 KiB; the SVR paper
#: packs "multiple postings into the same page", which this size reproduces.
PAGE_SIZE = 4096


@dataclass
class Page:
    """A fixed-capacity page of bytes.

    Parameters
    ----------
    page_id:
        Identifier assigned by the :class:`~repro.storage.disk.SimulatedDisk`.
    capacity:
        Maximum payload size in bytes.
    data:
        Current payload.  Must never exceed ``capacity``.
    """

    page_id: int
    capacity: int = PAGE_SIZE
    data: bytes = b""
    dirty: bool = field(default=False, compare=False)
    #: Cached decoded view of ``data`` (e.g. a B+-tree node).  ``None`` when the
    #: page has only been handled as raw bytes.
    decoded: Any = field(default=None, compare=False, repr=False)
    #: Whether ``decoded`` has changed since ``data`` was last produced from it.
    #: While true, ``data`` is stale and :meth:`materialize` must run before the
    #: payload bytes are used (the disk layer does this on every write).
    decoded_dirty: bool = field(default=False, compare=False, repr=False)
    #: Serialiser turning ``decoded`` back into payload bytes.
    encoder: Callable[[Any], bytes] | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise PageError(f"page capacity must be positive, got {self.capacity}")
        if len(self.data) > self.capacity:
            raise PageError(
                f"page {self.page_id}: payload of {len(self.data)} bytes exceeds "
                f"capacity {self.capacity}"
            )

    @property
    def size(self) -> int:
        """Number of payload bytes currently stored in the page."""
        return len(self.data)

    # -- decoded-object slot -------------------------------------------------

    def attach_decoded(self, decoded: Any, encoder: Callable[[Any], bytes],
                       dirty: bool = False) -> None:
        """Install a decoded view of the payload (with its serialiser).

        With ``dirty=True`` the decoded object is the authority and ``data`` is
        stale until :meth:`materialize` runs; with ``dirty=False`` the object is
        a pure read cache of the current ``data``.
        """
        self.decoded = decoded
        self.encoder = encoder
        if dirty:
            self.decoded_dirty = True

    def materialize(self) -> None:
        """Serialise a dirty decoded object back into ``data``.

        No-op when the payload bytes are already current.  Raises
        :class:`~repro.errors.PageError` when the serialised form no longer
        fits — callers that mutate decoded objects are expected to split them
        (B+-tree nodes) before this can trigger.
        """
        if not self.decoded_dirty:
            return
        payload = self.encoder(self.decoded)
        if len(payload) > self.capacity:
            raise PageError(
                f"page {self.page_id}: decoded payload of {len(payload)} bytes "
                f"exceeds capacity {self.capacity}"
            )
        self.data = bytes(payload)
        self.decoded_dirty = False

    @property
    def free_space(self) -> int:
        """Number of payload bytes that can still be written to the page."""
        return self.capacity - len(self.data)

    def write(self, payload: bytes) -> None:
        """Replace the page payload, marking the page dirty.

        Raises
        ------
        PageError
            If the payload does not fit in the page.
        """
        if len(payload) > self.capacity:
            raise PageError(
                f"page {self.page_id}: payload of {len(payload)} bytes exceeds "
                f"capacity {self.capacity}"
            )
        self.data = bytes(payload)
        self.dirty = True
        self.decoded = None
        self.decoded_dirty = False
        self.encoder = None

    def append(self, payload: bytes) -> None:
        """Append bytes to the page payload, marking the page dirty.

        Raises
        ------
        PageError
            If the combined payload does not fit in the page.
        """
        if len(payload) > self.free_space:
            raise PageError(
                f"page {self.page_id}: appending {len(payload)} bytes exceeds free "
                f"space {self.free_space}"
            )
        self.data = self.data + bytes(payload)
        self.dirty = True
        self.decoded = None
        self.decoded_dirty = False
        self.encoder = None

    def clear(self) -> None:
        """Drop the payload, marking the page dirty."""
        self.data = b""
        self.dirty = True
        self.decoded = None
        self.decoded_dirty = False
        self.encoder = None

    def copy(self) -> "Page":
        """Return an independent byte-level copy of the page (disk layer).

        The decoded slot deliberately does not survive a copy: disk-resident
        pages are bytes, and a fresh read decodes on first use.
        """
        self.materialize()
        return Page(page_id=self.page_id, capacity=self.capacity, data=self.data)


def pages_needed(payload_size: int, page_size: int = PAGE_SIZE) -> int:
    """Number of pages required to hold ``payload_size`` bytes.

    A zero-byte payload still occupies one page (the object exists on disk).
    """
    if payload_size < 0:
        raise PageError(f"payload size must be non-negative, got {payload_size}")
    if payload_size == 0:
        return 1
    return (payload_size + page_size - 1) // page_size


def split_into_pages(payload: bytes, page_size: int = PAGE_SIZE) -> list[bytes]:
    """Split a byte string into page-sized fragments.

    The final fragment may be shorter than ``page_size``.  An empty payload
    yields a single empty fragment so that the object still occupies one page.
    """
    if not payload:
        return [b""]
    return [payload[i:i + page_size] for i in range(0, len(payload), page_size)]
