"""Simulated disk with per-access accounting and a configurable cost model.

The paper's evaluation runs queries against a *cold* BerkeleyDB cache so that
long-inverted-list scans pay real disk reads, while the small Score table and
short lists stay resident in the cache.  Reproducing the paper's conclusions
therefore requires an I/O model, not just wall-clock time: this module stores
pages in memory but counts every read and write, distinguishes sequential from
random accesses, and can convert the counters into an estimated cost using a
simple seek/transfer model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import PageNotFoundError, StorageError
from repro.storage.pager import PAGE_SIZE, Page


@dataclass(frozen=True)
class DiskCostModel:
    """Converts page-access counters into an estimated elapsed time.

    The defaults model a commodity 2005-era disk (the paper's testbed used an
    80 GB IDE/SATA drive): a random page access pays a seek + rotational delay,
    a sequential access pays only the transfer time, and writes are buffered so
    they cost the same as sequential reads.

    Attributes
    ----------
    random_read_ms:
        Cost of a page read that is not contiguous with the previous access.
    sequential_read_ms:
        Cost of a page read contiguous with the previous access.
    write_ms:
        Cost of a page write.
    cpu_per_page_ms:
        CPU overhead per page processed (decode + merge work).
    """

    random_read_ms: float = 8.0
    sequential_read_ms: float = 0.05
    write_ms: float = 0.1
    cpu_per_page_ms: float = 0.01

    def cost_ms(self, stats: "DiskStats") -> float:
        """Estimated elapsed milliseconds implied by ``stats``."""
        return (
            stats.random_reads * self.random_read_ms
            + stats.sequential_reads * self.sequential_read_ms
            + stats.writes * self.write_ms
            + (stats.reads + stats.writes) * self.cpu_per_page_ms
        )


@dataclass
class DiskStats:
    """Mutable counters for disk activity.

    ``reads`` is always ``random_reads + sequential_reads``.
    """

    reads: int = 0
    writes: int = 0
    random_reads: int = 0
    sequential_reads: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def snapshot(self) -> "DiskStats":
        """Return an independent copy of the current counters."""
        return DiskStats(
            reads=self.reads,
            writes=self.writes,
            random_reads=self.random_reads,
            sequential_reads=self.sequential_reads,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
        )

    def diff(self, earlier: "DiskStats") -> "DiskStats":
        """Return the counter deltas since ``earlier``."""
        return DiskStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            random_reads=self.random_reads - earlier.random_reads,
            sequential_reads=self.sequential_reads - earlier.sequential_reads,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.random_reads = 0
        self.sequential_reads = 0
        self.bytes_read = 0
        self.bytes_written = 0

    @classmethod
    def sum_of(cls, stats: "Iterable[DiskStats]") -> "DiskStats":
        """Per-category sum of several counter sets (sharded-disk aggregation)."""
        total = cls()
        for item in stats:
            total.reads += item.reads
            total.writes += item.writes
            total.random_reads += item.random_reads
            total.sequential_reads += item.sequential_reads
            total.bytes_read += item.bytes_read
            total.bytes_written += item.bytes_written
        return total


@dataclass
class SimulatedDisk:
    """An in-memory page store that behaves like a disk for accounting purposes.

    Pages are allocated with monotonically increasing ids.  Reads and writes
    update :class:`DiskStats`; a read whose page id immediately follows the
    previously accessed page id is counted as sequential, everything else as
    random.  Higher layers (buffer pool, heap files, B+-trees) never bypass
    this interface, so the counters capture all simulated I/O.

    The *accounting* logic lives entirely in the public methods; where the
    page payloads actually reside is delegated to the ``_backend_*`` hooks.
    The default hooks keep pages in a dict;
    :class:`~repro.storage.persistence.file_disk.FileBackedDisk` overrides
    them to store pages in a single paged file behind a write-ahead log.
    Because every backend shares this class's accounting code, the per-category
    counters of a workload are identical whichever backend runs it.
    """

    page_size: int = PAGE_SIZE
    stats: DiskStats = field(default_factory=DiskStats)
    _pages: dict[int, Page] = field(default_factory=dict)
    _next_page_id: int = 0
    _last_accessed: int | None = field(default=None)
    #: Optional fault injector (see :mod:`repro.storage.faults`).  ``None``
    #: keeps every access on the plain fast path — one attribute check per
    #: operation, no behaviour or accounting change.
    fault_injector: Any = field(default=None, repr=False, compare=False)

    # -- storage backend hooks ------------------------------------------------

    def _backend_create(self, page_id: int) -> None:
        """Register a freshly allocated empty page with the backend."""
        self._pages[page_id] = Page(page_id=page_id, capacity=self.page_size)

    def _backend_fetch(self, page_id: int) -> "Page | None":
        """Return an independent copy of a page, or ``None`` when absent."""
        page = self._pages.get(page_id)
        return page.copy() if page is not None else None

    def _backend_store(self, page: Page) -> None:
        """Persist an already-detached, materialized page copy."""
        self._pages[page.page_id] = page

    def _backend_discard(self, page_id: int) -> None:
        """Drop a page from the backend (missing ids are ignored)."""
        self._pages.pop(page_id, None)

    def _backend_contains(self, page_id: int) -> bool:
        """Whether the backend holds the given page id."""
        return page_id in self._pages

    def _backend_page_count(self) -> int:
        """Number of live pages in the backend."""
        return len(self._pages)

    def _backend_used_bytes(self) -> int:
        """Total payload bytes stored across all live pages."""
        return sum(page.size for page in self._pages.values())

    # -- public API -----------------------------------------------------------

    def _faulted(self, op: str, attempt):
        """Run one backend operation under the attached fault injector.

        Transient faults retry with the plan's deterministic bounded-backoff
        policy; hard faults (ENOSPC, retry exhaustion) escalate as typed
        :class:`~repro.errors.StorageError` subclasses tagged with the
        injector's failure domain.  Never called without an injector.
        """
        from repro.storage.faults import run_with_retries

        injector = self.fault_injector

        def guarded():
            injector.fault_point(op)
            return attempt()

        return run_with_retries(injector, op, guarded)

    def allocate(self) -> int:
        """Allocate a new empty page and return its id (counts as a write)."""
        if self.fault_injector is not None:
            self._faulted("allocate", lambda: None)
        page_id = self._next_page_id
        self._next_page_id += 1
        self._backend_create(page_id)
        self.stats.writes += 1
        self._last_accessed = page_id
        return page_id

    def allocate_many(self, count: int) -> list[int]:
        """Allocate ``count`` contiguous pages and return their ids."""
        if count < 0:
            raise StorageError(f"cannot allocate a negative page count: {count}")
        return [self.allocate() for _ in range(count)]

    def read(self, page_id: int) -> Page:
        """Read a page, returning a copy so callers cannot mutate disk state."""
        if self.fault_injector is None:
            page = self._backend_fetch(page_id)
        else:
            page = self._faulted("read", lambda: self._backend_fetch(page_id))
        if page is None:
            raise PageNotFoundError(f"page {page_id} does not exist")
        self.stats.reads += 1
        self.stats.bytes_read += self.page_size
        if self._last_accessed is not None and page_id == self._last_accessed + 1:
            self.stats.sequential_reads += 1
        else:
            self.stats.random_reads += 1
        self._last_accessed = page_id
        return page

    def peek(self, page_id: int) -> Page:
        """Read a page without charging any I/O accounting.

        Maintenance traversals (size reporting, page-id enumeration) use this
        path so they neither perturb the access counters nor the sequential/
        random classification of the measured workload.
        """
        page = self._backend_fetch(page_id)
        if page is None:
            raise PageNotFoundError(f"page {page_id} does not exist")
        return page

    def write(self, page: Page) -> None:
        """Write a page back to disk (serialising any dirty decoded object)."""
        if not self._backend_contains(page.page_id):
            raise PageNotFoundError(f"page {page.page_id} does not exist")
        stored = page.copy()
        stored.dirty = False
        if self.fault_injector is None:
            self._backend_store(stored)
        else:
            self._faulted("write", lambda: self._backend_store(stored))
        self.stats.writes += 1
        self.stats.bytes_written += self.page_size
        self._last_accessed = page.page_id

    def free(self, page_id: int) -> None:
        """Remove a page from the disk (no accounting cost)."""
        self._backend_discard(page_id)

    def contains(self, page_id: int) -> bool:
        """Whether the given page id exists."""
        return self._backend_contains(page_id)

    @property
    def page_count(self) -> int:
        """Number of pages currently allocated."""
        return self._backend_page_count()

    @property
    def size_bytes(self) -> int:
        """Total allocated capacity in bytes."""
        return self._backend_page_count() * self.page_size

    def used_bytes(self) -> int:
        """Total payload bytes actually stored across all pages."""
        return self._backend_used_bytes()

    def estimated_cost_ms(self, model: DiskCostModel | None = None) -> float:
        """Estimated elapsed milliseconds for all activity so far."""
        return (model or DiskCostModel()).cost_ms(self.stats)
