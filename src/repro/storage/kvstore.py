"""BerkeleyDB-flavoured key-value facade over a B+-tree.

The relational layer and the index implementations mostly need an ordered
key-value store with cursors (the BerkeleyDB API the paper's implementation
used).  :class:`KVStore` wraps a :class:`~repro.storage.btree.BPlusTree` with
``put``/``get``/``delete``/``cursor`` methods and duplicate-key support via
composite keys, which is how the short inverted lists (term -> postings) are
laid out.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import KeyNotFoundError, StoreClosedError
from repro.storage.btree import BPlusTree
from repro.storage.buffer_pool import BufferPool


class _KeyUpperBound:
    """Sentinel that compares greater than every ordinary key component.

    Appending it to a tuple prefix produces the exclusive upper bound of the
    prefix range: every tuple key starting with the prefix compares smaller,
    every key past the prefix compares greater, so a prefix scan can be handed
    to the B+-tree as a bounded range and stop reading leaves at the range end
    instead of filtering past it client-side.
    """

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return isinstance(other, _KeyUpperBound)

    def __gt__(self, other: Any) -> bool:
        return not isinstance(other, _KeyUpperBound)

    def __ge__(self, other: Any) -> bool:
        return True

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _KeyUpperBound)

    def __hash__(self) -> int:
        return 0x5EB1

    def __repr__(self) -> str:
        return "<key upper bound>"


#: Singleton upper-bound sentinel used by :meth:`KVStore.prefix_items`.
KEY_UPPER_BOUND = _KeyUpperBound()


class Cursor:
    """Forward iterator over a key range of a :class:`KVStore`.

    ``iterator`` may be supplied instead of a store to wrap an arbitrary
    pre-built ``(key, value)`` stream in the cursor protocol — the sharded
    facade uses this to expose a key-ordered merge of several stores.
    """

    def __init__(
        self,
        store: "KVStore | None" = None,
        low: Any = None,
        high: Any = None,
        inclusive: tuple[bool, bool] = (True, True),
        iterator: "Iterator[tuple[Any, Any]] | None" = None,
    ) -> None:
        if iterator is None:
            if store is None:
                raise TypeError("Cursor needs a store or an iterator")
            iterator = store.tree.items(low=low, high=high, inclusive=inclusive)
        self._iterator = iterator
        self._current: tuple[Any, Any] | None = None
        self._exhausted = False

    def next(self) -> tuple[Any, Any] | None:
        """Advance and return the next ``(key, value)`` pair, or ``None``."""
        if self._exhausted:
            return None
        try:
            self._current = next(self._iterator)
        except StopIteration:
            self._current = None
            self._exhausted = True
        return self._current

    @property
    def current(self) -> tuple[Any, Any] | None:
        """The pair returned by the last successful :meth:`next` call."""
        return self._current

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        while True:
            pair = self.next()
            if pair is None:
                return
            yield pair


class KVStore:
    """An ordered key-value store with BerkeleyDB-style semantics.

    Parameters
    ----------
    buffer_pool:
        Buffer pool shared with the rest of the storage environment.
    name:
        Store name (used in error messages and the environment catalogue).
    order:
        B+-tree fan-out; derived from the page size when omitted.
    """

    def __init__(self, buffer_pool: BufferPool, name: str, order: int | None = None) -> None:
        self.name = name
        self.tree = BPlusTree(buffer_pool, order=order, name=name)
        self._closed = False

    # -- persistence ---------------------------------------------------------

    def state(self) -> dict:
        """The store's non-page state for a durability catalog."""
        return self.tree.state()

    @classmethod
    def attach(cls, buffer_pool: BufferPool, name: str, state: dict) -> "KVStore":
        """Rebuild a store around an existing tree (checkpoint/WAL recovery)."""
        store = cls.__new__(cls)
        store.name = name
        store.tree = BPlusTree.attach(buffer_pool, state, name=name)
        store._closed = False
        return store

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Mark the store closed; further operations raise ``StoreClosedError``."""
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"store {self.name!r} is closed")

    # -- point operations ------------------------------------------------------

    def put(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        self._check_open()
        self.tree.insert(key, value, overwrite=True)

    def get(self, key: Any, default: Any = ...) -> Any:
        """Return the value under ``key`` (or ``default`` if supplied)."""
        self._check_open()
        return self.tree.get(key, default=default)

    def delete(self, key: Any) -> Any:
        """Delete ``key`` and return its old value."""
        self._check_open()
        return self.tree.delete(key)

    def delete_if_present(self, key: Any) -> bool:
        """Delete ``key`` if it exists; return whether a deletion happened."""
        self._check_open()
        try:
            self.tree.delete(key)
        except KeyNotFoundError:
            return False
        return True

    # -- bulk operations -------------------------------------------------------

    def put_many(self, items: "Iterable[tuple[Any, Any]]") -> int:
        """Insert or overwrite a batch of entries through one sorted bulk pass.

        Consecutive keys that land in the same B+-tree leaf share a single
        descent and leaf write (see
        :meth:`~repro.storage.btree.BPlusTree.insert_many`).  Returns the
        number of keys that were newly inserted.
        """
        self._check_open()
        return self.tree.insert_many(items, overwrite=True)

    def delete_many(self, keys: "Iterable[Any]",
                    ignore_missing: bool = False) -> int:
        """Delete a batch of keys through one sorted bulk pass.

        With ``ignore_missing=True`` absent keys are skipped (the bulk
        equivalent of :meth:`delete_if_present`); otherwise the first missing
        key raises after the deletions before it have been applied.  Returns
        the number of entries removed.
        """
        self._check_open()
        return self.tree.delete_many(keys, ignore_missing=ignore_missing)

    def contains(self, key: Any) -> bool:
        """Whether ``key`` is present."""
        self._check_open()
        return key in self.tree

    def __contains__(self, key: Any) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return len(self.tree)

    # -- range operations --------------------------------------------------------

    def cursor(
        self,
        low: Any = None,
        high: Any = None,
        inclusive: tuple[bool, bool] = (True, True),
    ) -> Cursor:
        """Open a forward cursor over ``[low, high]``."""
        self._check_open()
        return Cursor(self, low=low, high=high, inclusive=inclusive)

    def items(self, low: Any = None, high: Any = None) -> Iterator[tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs over ``[low, high]`` in key order."""
        self._check_open()
        return self.tree.items(low=low, high=high)

    def prefix_items(self, prefix: Any) -> Iterator[tuple[Any, Any]]:
        """Iterate pairs whose (tuple) key starts with ``prefix``.

        Keys must be tuples; ``prefix`` is matched against the first
        ``len(prefix)`` components.  This is the duplicate-key idiom used for
        short inverted lists, whose keys are ``(term, doc_id)``.

        The scan runs as a bounded range ``[prefix, prefix + (MAX,))`` so the
        underlying tree stops reading leaves at the end of the prefix range
        rather than scanning on and discarding keys client-side.
        """
        self._check_open()
        prefix = tuple(prefix)
        high = prefix + (KEY_UPPER_BOUND,)
        return self.tree.items(low=prefix, high=high, inclusive=(True, False))

    # -- statistics ----------------------------------------------------------------

    def size_bytes(self) -> int:
        """Serialized size of the underlying tree."""
        self._check_open()
        return self.tree.size_bytes()

    def page_ids(self, accounted: bool = False) -> set[int]:
        """Page ids owned by the underlying tree.

        ``accounted=True`` charges the traversal like a normal read sequence
        (see :meth:`~repro.storage.btree.BPlusTree.page_ids`).
        """
        self._check_open()
        return self.tree.page_ids(accounted=accounted)
