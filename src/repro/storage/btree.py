"""A paged B+-tree with decode-once node caching.

The SVR paper implements the Score table, ListScore/ListChunk tables, short
inverted lists and the (clustered) Score-method long list as BerkeleyDB
B+-trees.  This module provides the equivalent: an ordered map whose nodes are
serialised into pages and fetched through the shared buffer pool, so every
lookup, insert and range scan is charged the same way BerkeleyDB would charge
it.

Keys may be any totally ordered, picklable Python values (ints, floats,
strings, or tuples thereof).  Values must be picklable and small relative to
the page size; large payloads belong in a :class:`~repro.storage.heap_file.HeapFile`.

Deletions remove entries but do not rebalance nodes; empty leaves are unlinked
from their parents.  This matches the reproduction's needs (the paper never
relies on delete-heavy B+-tree behaviour) while keeping iteration order and
lookup semantics exact.

Performance model
-----------------
Page *accounting* (buffer-pool hits/misses, disk reads/writes) is the quantity
the paper's arguments are about; interpreter-level serialisation cost is not.
Nodes are therefore decoded **once per buffer-pool residency**: the decoded
node rides in the frame's decoded-object slot (:class:`~repro.storage.pager.Page`)
and is serialised back only when the page leaves the pool (eviction or flush).
Every node access still goes through ``pool.get``/``pool.put`` exactly as
before, so the I/O counters are bit-for-bit identical to an engine that
pickles on every access.  Split decisions use an incrementally maintained
upper bound of the serialized node size and fall back to exact serialisation
only when the bound crosses the split threshold, which keeps the split
sequence — and therefore the page layout — identical as well.

Maintenance traversals (``size_bytes``, ``page_ids``, ``node_count``,
``height``) read nodes through the buffer pool's accounting-free ``peek``
path: reporting on the tree does not perturb LRU order or hit-rate statistics.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Iterable, Iterator

from repro.errors import DuplicateKeyError, KeyNotFoundError, StorageError
from repro.storage.buffer_pool import BufferPool

#: Bytes of page capacity kept free when deciding whether a node must split.
#: The slack absorbs the serialisation growth of the parent insert that a
#: split itself causes; both the split check and the write-size guard derive
#: from the same page capacity so a node can never pass the split check yet
#: fail to serialise into its page.
NODE_SPLIT_SLACK = 64

#: Conservative per-entry overhead (list APPEND opcodes, memo bookkeeping)
#: added on top of the standalone pickle size of a key/value when maintaining
#: the incremental serialized-size upper bound.  Standalone ``pickle.dumps``
#: already overstates an entry's in-node cost by the protocol header/frame
#: (~13 bytes), so this only needs to cover pathological opcode differences.
_ENTRY_SLOP = 8

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def split_threshold(page_size: int) -> int:
    """Serialized node size above which the node must split."""
    return page_size - NODE_SPLIT_SLACK


def default_order(page_size: int) -> int:
    """Maximum node fan-out for a page size.

    Nodes split primarily when their *serialized size* approaches the page
    capacity (see :meth:`BPlusTree._needs_split`), so this value is only an
    upper bound on the entry count; it keeps binary searches over a node cheap.
    """
    return max(16, min(128, page_size // 16))


def _pickled_size(obj: Any) -> int:
    return len(pickle.dumps(obj, protocol=_PICKLE_PROTOCOL))


class _Node:
    """In-memory representation of a B+-tree node (leaf or internal).

    ``_ser_size``/``_ser_slop`` maintain the serialized-size upper bound:
    ``_ser_size`` is the exact pickled size the last time the node was
    (de)serialised (``None`` when unknown, e.g. right after a split sliced the
    entry lists) and ``_ser_slop`` accumulates conservative per-mutation byte
    bounds since then.  ``estimated_size()`` therefore never under-reports the
    true serialized size, which is what makes the lazy split check exact.
    """

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children", "next_leaf",
                 "_ser_size", "_ser_slop")

    def __init__(
        self,
        page_id: int,
        is_leaf: bool,
        keys: list[Any] | None = None,
        values: list[Any] | None = None,
        children: list[int] | None = None,
        next_leaf: int | None = None,
    ) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys = keys if keys is not None else []
        self.values = values if values is not None else []
        self.children = children if children is not None else []
        self.next_leaf = next_leaf
        self._ser_size: int | None = None
        self._ser_slop = 0

    def to_bytes(self) -> bytes:
        payload = (self.is_leaf, self.keys, self.values, self.children, self.next_leaf)
        data = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
        self._ser_size = len(data)
        self._ser_slop = 0
        return data

    @classmethod
    def from_bytes(cls, page_id: int, data: bytes) -> "_Node":
        is_leaf, keys, values, children, next_leaf = pickle.loads(data)
        node = cls(page_id, is_leaf, keys, values, children, next_leaf)
        node._ser_size = len(data)
        return node

    # -- serialized-size bookkeeping ----------------------------------------

    def estimated_size(self) -> int | None:
        """Upper bound of the serialized size, or ``None`` when unknown."""
        if self._ser_size is None:
            return None
        return self._ser_size + self._ser_slop

    def size_is_exact(self) -> bool:
        """Whether :meth:`estimated_size` currently equals the true size."""
        return self._ser_size is not None and self._ser_slop == 0

    def invalidate_size(self) -> None:
        self._ser_size = None
        self._ser_slop = 0

    def note_bytes(self, upper_bound: int) -> None:
        """Record a mutation's serialized-size contribution in the bound."""
        if self._ser_size is not None:
            self._ser_slop += upper_bound

    def note_separator(self, key: Any) -> None:
        """Record an inserted internal separator + child pointer in the bound."""
        if self._ser_size is not None:
            # A child page id is an int; 16 bytes covers any realistic pickle.
            self._ser_slop += _pickled_size(key) + 16 + _ENTRY_SLOP


def _encode_node(node: _Node) -> bytes:
    return node.to_bytes()


#: Sentinel distinguishing "no separator on the descent path" from a genuine
#: ``None`` key (reverse iteration's fallback bound must not collide with it).
_NO_SEPARATOR = object()


class BPlusTree:
    """An ordered map stored in pages and accessed through a buffer pool.

    Parameters
    ----------
    buffer_pool:
        Shared buffer pool used for all node reads and writes.
    order:
        Maximum number of keys per node before it splits.
    name:
        Optional human-readable name used in error messages and statistics.
    unique:
        When true (the default), inserting an existing key overwrites its
        value; :meth:`insert` with ``overwrite=False`` raises
        :class:`~repro.errors.DuplicateKeyError` instead.
    """

    def __init__(
        self,
        buffer_pool: BufferPool,
        order: int | None = None,
        name: str = "btree",
        unique: bool = True,
    ) -> None:
        if order is None:
            order = default_order(buffer_pool.disk.page_size)
        if order < 4:
            raise StorageError(f"B+-tree order must be at least 4, got {order}")
        self.pool = buffer_pool
        self.order = order
        self.name = name
        self.unique = unique
        self._size = 0
        self._split_threshold = split_threshold(buffer_pool.disk.page_size)
        root = self._new_node(is_leaf=True)
        self._root_id = root.page_id
        self._write_node(root)

    # -- persistence ---------------------------------------------------------

    def state(self) -> dict:
        """The tree's non-page state, as stored in a durability catalog.

        Everything else a tree is lives in its pages; this dict plus the page
        contents is enough for :meth:`attach` to rebuild an equivalent tree.
        """
        return {
            "order": self.order,
            "unique": self.unique,
            "root_id": self._root_id,
            "size": self._size,
        }

    @classmethod
    def attach(cls, buffer_pool: BufferPool, state: dict,
               name: str = "btree") -> "BPlusTree":
        """Rebuild a tree around existing pages (checkpoint/WAL recovery).

        Unlike the constructor, no root page is allocated — the tree adopts
        the root recorded in ``state`` and reads its nodes from the buffer
        pool on demand.
        """
        tree = cls.__new__(cls)
        tree.pool = buffer_pool
        tree.order = state["order"]
        tree.name = name
        tree.unique = state["unique"]
        tree._size = state["size"]
        tree._split_threshold = split_threshold(buffer_pool.disk.page_size)
        tree._root_id = state["root_id"]
        return tree

    # -- public API ----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        try:
            self.get(key)
        except KeyNotFoundError:
            return False
        return True

    def get(self, key: Any, default: Any = ...) -> Any:
        """Return the value stored under ``key``.

        Raises :class:`~repro.errors.KeyNotFoundError` when the key is absent
        and no ``default`` was supplied.
        """
        leaf = self._find_leaf(key)
        idx = self._position(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        if default is not ...:
            return default
        raise KeyNotFoundError(f"{self.name}: key {key!r} not found")

    def insert(self, key: Any, value: Any, overwrite: bool = True) -> None:
        """Insert or update an entry.

        With ``overwrite=False`` an existing key raises
        :class:`~repro.errors.DuplicateKeyError`.
        """
        path = self._path_to_leaf(key)
        leaf = path[-1]
        idx = self._position(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            if not overwrite:
                raise DuplicateKeyError(f"{self.name}: duplicate key {key!r}")
            value, value_size = self._normalize(value)
            old_value = leaf.values[idx]
            leaf.values[idx] = value
            leaf.note_bytes(value_size + _ENTRY_SLOP)
            if self._needs_split(leaf):
                self._checkpoint_committed(leaf, idx, restore=old_value)
                try:
                    self._split(path)
                except StorageError:
                    leaf.values[idx] = old_value
                    self._reset_frame(leaf)
                    raise
            else:
                try:
                    self._write_node(leaf)
                except StorageError:
                    leaf.values[idx] = old_value
                    raise
            return
        key, key_size = self._normalize(key)
        value, value_size = self._normalize(value)
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        leaf.note_bytes(key_size + value_size + _ENTRY_SLOP)
        self._size += 1
        if self._needs_split(leaf):
            self._checkpoint_committed(leaf, idx)
            try:
                self._split(path)
            except StorageError:
                self._size -= 1
                self._reset_frame(leaf)
                raise
        else:
            try:
                self._write_node(leaf)
            except StorageError:
                del leaf.keys[idx]
                del leaf.values[idx]
                self._size -= 1
                raise

    def delete(self, key: Any) -> Any:
        """Remove an entry and return its value.

        Raises :class:`~repro.errors.KeyNotFoundError` when the key is absent.
        """
        path = self._path_to_leaf(key)
        leaf = path[-1]
        idx = self._position(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyNotFoundError(f"{self.name}: key {key!r} not found")
        value = leaf.values.pop(idx)
        leaf.keys.pop(idx)
        self._size -= 1
        self._write_node(leaf)
        return value

    def insert_many(self, items: "Iterable[tuple[Any, Any]]",
                    overwrite: bool = True) -> int:
        """Bulk insert: sort the entries and descend once per leaf run.

        Equivalent to calling :meth:`insert` for every ``(key, value)`` pair in
        key order, but all consecutive keys that land in the same leaf share a
        single root-to-leaf descent and a single leaf write, so a batch of n
        keys spread over m leaves charges O(m * height) accounted page reads
        instead of O(n * height).  Split decisions are made after every entry
        through the same incremental size bound as :meth:`insert`, so the split
        sequence — and therefore the page layout — is identical to inserting
        the sorted batch one key at a time.

        Duplicate keys *within* the batch follow sequential semantics: the
        later entry wins (or raises with ``overwrite=False``).  On a failure
        (duplicate key, oversized value) every entry before the failing one is
        already committed, exactly as a sequential loop would leave the tree.

        Returns the number of keys that were newly inserted (overwrites of
        existing keys are not counted).
        """
        entries = []
        for key, value in items:
            key, key_size = self._normalize(key)
            value, value_size = self._normalize(value)
            entries.append((key, value, key_size, value_size))
        # Sort on the key alone (values may not be comparable); the sort is
        # stable, so within-batch duplicates keep their sequential order.
        entries.sort(key=lambda entry: entry[0])
        inserted = 0
        position = 0
        total = len(entries)
        while position < total:
            path, upper = self._bounded_path_to_leaf(entries[position][0])
            leaf = path[-1]
            run_dirty = False
            while position < total:
                key, value, key_size, value_size = entries[position]
                if upper is not _NO_SEPARATOR and not key < upper:
                    break  # the key belongs to a leaf further right
                idx = self._position(leaf.keys, key)
                is_overwrite = idx < len(leaf.keys) and leaf.keys[idx] == key
                if is_overwrite:
                    if not overwrite:
                        if run_dirty:
                            self._write_node(leaf)
                        raise DuplicateKeyError(
                            f"{self.name}: duplicate key {key!r}"
                        )
                    old_value = leaf.values[idx]
                    leaf.values[idx] = value
                    leaf.note_bytes(value_size + _ENTRY_SLOP)
                else:
                    old_value = ...
                    leaf.keys.insert(idx, key)
                    leaf.values.insert(idx, value)
                    leaf.note_bytes(key_size + value_size + _ENTRY_SLOP)
                    self._size += 1
                    inserted += 1
                # Keep the frame's decoded slot marked dirty so write-back and
                # the split checkpoint see the run's entries (accounting-free
                # flag sync; the charged leaf write happens once per run).
                self._mark_decoded_dirty(leaf)
                position += 1
                if self._needs_split(leaf):
                    restore = ... if old_value is ... else old_value
                    self._checkpoint_committed(leaf, idx, restore=restore)
                    try:
                        self._split(path)
                    except StorageError:
                        if old_value is ...:
                            self._size -= 1
                            inserted -= 1
                        else:
                            leaf.values[idx] = old_value
                        self._reset_frame(leaf)
                        raise
                    run_dirty = False
                    break  # the path is stale after a split; re-descend
                try:
                    # The same write guard a sequential insert applies: an
                    # entry too big for a leaf that cannot split (e.g. fewer
                    # than two keys) must fail here, at this entry, unwinding
                    # only itself while the run's earlier entries commit.
                    self._ensure_fits(leaf)
                except StorageError:
                    if old_value is ...:
                        del leaf.keys[idx]
                        del leaf.values[idx]
                        self._size -= 1
                        inserted -= 1
                    else:
                        leaf.values[idx] = old_value
                    if run_dirty:
                        self._write_node(leaf)
                    raise
                run_dirty = True
            if run_dirty:
                self._write_node(leaf)
        return inserted

    def delete_many(self, keys: "Iterable[Any]",
                    ignore_missing: bool = False) -> int:
        """Bulk delete: sort the keys and descend once per leaf run.

        Equivalent to calling :meth:`delete` (or, with ``ignore_missing=True``,
        a delete-if-present) for every key in sorted order, but consecutive
        keys living in the same leaf share one descent and one leaf write.
        Duplicate keys in the batch delete the entry once; with
        ``ignore_missing=False`` the second occurrence raises.  On a missing
        key every deletion before it is already committed, exactly as a
        sequential loop would leave the tree.

        Returns the number of entries removed.
        """
        sorted_keys = sorted(keys)
        removed = 0
        position = 0
        total = len(sorted_keys)
        while position < total:
            path, upper = self._bounded_path_to_leaf(sorted_keys[position])
            leaf = path[-1]
            run_dirty = False
            while position < total:
                key = sorted_keys[position]
                if upper is not _NO_SEPARATOR and not key < upper:
                    break
                idx = self._position(leaf.keys, key)
                if idx < len(leaf.keys) and leaf.keys[idx] == key:
                    leaf.keys.pop(idx)
                    leaf.values.pop(idx)
                    self._size -= 1
                    removed += 1
                    self._mark_decoded_dirty(leaf)
                    run_dirty = True
                elif not ignore_missing:
                    if run_dirty:
                        self._write_node(leaf)
                    raise KeyNotFoundError(f"{self.name}: key {key!r} not found")
                position += 1
            if run_dirty:
                self._write_node(leaf)
        return removed

    def items(
        self,
        low: Any = None,
        high: Any = None,
        inclusive: tuple[bool, bool] = (True, True),
        reverse: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Iterate over ``(key, value)`` pairs in key order.

        ``low``/``high`` bound the range (``None`` means unbounded); the
        ``inclusive`` flags control whether each bound is included.  Reverse
        iteration walks leaves right-to-left through per-level descent (the
        leaf chain is singly linked), so it reads only the leaves the consumer
        actually drains instead of materialising the whole range.
        """
        if reverse:
            return self._range_items_reverse(low, high, inclusive)
        return self._range_items(low, high, inclusive)

    def keys(self) -> Iterator[Any]:
        """Iterate over keys in ascending order."""
        for key, _value in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        """Iterate over values in ascending key order."""
        for _key, value in self.items():
            yield value

    def first(self) -> tuple[Any, Any]:
        """Return the smallest ``(key, value)`` pair."""
        for pair in self.items():
            return pair
        raise KeyNotFoundError(f"{self.name}: tree is empty")

    def last(self) -> tuple[Any, Any]:
        """Return the largest ``(key, value)`` pair (O(height), not a scan)."""
        for pair in self.items(reverse=True):
            return pair
        raise KeyNotFoundError(f"{self.name}: tree is empty")

    def update_value(self, key: Any, fn: Callable[[Any], Any]) -> Any:
        """Apply ``fn`` to the value stored under ``key`` and store the result."""
        leaf = self._find_leaf(key)
        idx = self._position(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyNotFoundError(f"{self.name}: key {key!r} not found")
        old_value = leaf.values[idx]
        new_value, value_size = self._normalize(fn(old_value))
        leaf.values[idx] = new_value
        leaf.note_bytes(value_size + _ENTRY_SLOP)
        try:
            self._write_node(leaf)
        except StorageError:
            leaf.values[idx] = old_value
            raise
        return new_value

    def clear(self) -> None:
        """Remove every entry (allocates a fresh root leaf)."""
        root = self._new_node(is_leaf=True)
        self._root_id = root.page_id
        self._write_node(root)
        self._size = 0

    def height(self) -> int:
        """Number of levels from root to leaf (1 for a single-leaf tree)."""
        levels = 1
        node = self._peek_node(self._root_id)
        while not node.is_leaf:
            node = self._peek_node(node.children[0])
            levels += 1
        return levels

    def node_count(self) -> int:
        """Total number of nodes reachable from the root."""
        count = 0
        stack = [self._root_id]
        while stack:
            node = self._peek_node(stack.pop())
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def size_bytes(self) -> int:
        """Serialized size of every node, in bytes (accounting-free)."""
        total = 0
        stack = [self._root_id]
        while stack:
            node = self._peek_node(stack.pop())
            total += len(node.to_bytes())
            if not node.is_leaf:
                stack.extend(node.children)
        return total

    def page_ids(self, accounted: bool = False) -> set[int]:
        """Set of page ids used by this tree (for targeted cache drops).

        By default the traversal is accounting-free: enumerating pages for
        reporting must not perturb hit-rate statistics or LRU order.  With
        ``accounted=True`` every node is fetched through the charging path —
        the cold-cache methodology of the experiments walks the tree exactly
        like BerkeleyDB would before evicting it, and removing those charges
        would change the access-cursor state the measured workload starts
        from.
        """
        read = self._read_node if accounted else self._peek_node
        ids: set[int] = set()
        stack = [self._root_id]
        while stack:
            page_id = stack.pop()
            ids.add(page_id)
            node = read(page_id)
            if not node.is_leaf:
                stack.extend(node.children)
        return ids

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _normalize(obj: Any) -> tuple[Any, int]:
        """Round-trip an object through pickle; return ``(copy, pickled_size)``.

        Stored keys and values are kept as a serialisation round-trip would
        produce them, for two reasons.  First, it makes the stored entry
        independent of the caller's object (callers may mutate or reuse
        objects after the insert).  Second, it keeps the node's serialized
        size identical to an engine that re-decodes the page on every access:
        a long-lived decoded node would otherwise accumulate *shared* object
        identities across entries (e.g. one interned operation-marker string
        used by thousands of values), which pickle's memo encodes as
        back-references — silently shrinking the serialized node and shifting
        split points relative to the decode-per-access layout.  The pickled
        size doubles as the entry's contribution to the node size bound.
        """
        data = pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)
        return pickle.loads(data), len(data)

    def _new_node(self, is_leaf: bool) -> _Node:
        page = self.pool.allocate()
        return _Node(page_id=page.page_id, is_leaf=is_leaf)

    def _read_node(self, page_id: int) -> _Node:
        """Fetch a node through the buffer pool, decoding at most once.

        The decoded node is cached in the frame's decoded slot; repeat
        accesses while the page stays resident return the same object without
        touching pickle.  The ``pool.get`` call charges hit/miss accounting
        exactly as a decode-every-time engine would.
        """
        page = self.pool.get(page_id)
        node = page.decoded
        if node is not None:
            return node
        if not page.data:
            node = _Node(page_id=page_id, is_leaf=True)
        else:
            node = _Node.from_bytes(page_id, page.data)
        page.attach_decoded(node, _encode_node)
        return node

    def _peek_node(self, page_id: int) -> _Node:
        """Accounting-free node read for maintenance traversals."""
        page = self.pool.peek(page_id)
        node = page.decoded
        if node is not None:
            return node
        if not page.data:
            return _Node(page_id=page_id, is_leaf=True)
        return _Node.from_bytes(page_id, page.data)

    def _write_node(self, node: _Node) -> None:
        """Mark a node dirty in its frame; serialisation happens on write-back.

        The node is serialised here only when its size bound says it might no
        longer fit in a page — in which case the exact size is computed and an
        oversized node raises before any state is published, exactly like the
        eager-serialisation engine did.
        """
        page = self.pool.get(node.page_id)
        self._ensure_fits(node)
        page.attach_decoded(node, _encode_node, dirty=True)
        self.pool.put(page)

    def _ensure_fits(self, node: _Node) -> None:
        """Raise unless the node's serialized form fits in a page.

        Serialises only when the size bound says it might not fit, so the hot
        path stays serialisation-free.
        """
        capacity = self.pool.disk.page_size
        estimate = node.estimated_size()
        if estimate is None or estimate > capacity:
            payload_size = len(node.to_bytes())
            if payload_size > capacity:
                # Nodes are split on entry count; a payload larger than a page
                # means individual values are too big for a B+-tree leaf.
                raise StorageError(
                    f"{self.name}: serialized node ({payload_size} bytes) exceeds the "
                    f"page size ({capacity} bytes); store large values in a "
                    f"HeapFile and keep only references in the tree"
                )

    @staticmethod
    def _position(keys: list[Any], key: Any) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _find_leaf(self, key: Any) -> _Node:
        node = self._read_node(self._root_id)
        while not node.is_leaf:
            idx = self._child_index(node.keys, key)
            node = self._read_node(node.children[idx])
        return node

    def _path_to_leaf(self, key: Any) -> list[_Node]:
        path = [self._read_node(self._root_id)]
        while not path[-1].is_leaf:
            node = path[-1]
            idx = self._child_index(node.keys, key)
            path.append(self._read_node(node.children[idx]))
        return path

    def _bounded_path_to_leaf(self, key: Any) -> tuple[list[_Node], Any]:
        """Root-to-leaf path plus the leaf's exclusive upper bound.

        The bound is the nearest separator to the right of the descent path
        (the deepest one is the tightest), or :data:`_NO_SEPARATOR` when the
        descent stays on the rightmost spine.  Every key strictly below the
        bound belongs to the returned leaf, which is what lets the bulk
        operations consume a sorted run without re-descending per key.
        """
        path = [self._read_node(self._root_id)]
        upper: Any = _NO_SEPARATOR
        while not path[-1].is_leaf:
            node = path[-1]
            idx = self._child_index(node.keys, key)
            if idx < len(node.keys):
                upper = node.keys[idx]
            path.append(self._read_node(node.children[idx]))
        return path, upper

    def _mark_decoded_dirty(self, node: _Node) -> None:
        """Flag a resident node dirty without charging a write.

        Bulk runs mutate the decoded node several times before the single
        charged leaf write; flagging the frame keeps eviction write-back and
        the split checkpoint coherent in between.  The page-level dirty flag
        must be raised too: a sequential insert marks it on every ``put``, and
        without it a flush between batches could skip writing back committed
        run entries that a failed split checkpointed into the frame's bytes.
        Like the split path's frame management, this is bookkeeping on an
        already-resident frame, not a page access.
        """
        frame = self.pool.frame(node.page_id)
        if frame is not None and frame.decoded is node:
            frame.decoded_dirty = True
            frame.dirty = True

    @staticmethod
    def _child_index(keys: list[Any], key: Any) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if key < keys[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _needs_split(self, node: _Node) -> bool:
        """Whether a node must split before being written to its page.

        A node splits when it exceeds the fan-out cap or when its serialized
        form would no longer fit comfortably in one page (the real constraint:
        nodes are stored one per page, so density is driven by entry size).
        The incremental size bound avoids serialising the node on every
        insert: only when the bound crosses the threshold is the exact size
        computed, so the split decisions are identical to checking
        ``len(node.to_bytes())`` every time.
        """
        if len(node.keys) > self.order:
            return True
        if len(node.keys) < 2:
            return False
        limit = self._split_threshold
        estimate = node.estimated_size()
        if estimate is not None:
            if estimate <= limit:
                return False
            if node.size_is_exact():
                return True
        return len(node.to_bytes()) > limit

    def _checkpoint_committed(self, leaf: _Node, idx: int,
                              restore: Any = ...) -> None:
        """Materialize the leaf's *committed* state before a risky split.

        The pending mutation at ``idx`` (a fresh entry, or an overwrite whose
        old value is ``restore``) is temporarily undone so the frame's bytes
        capture exactly the state before this operation.  If the split then
        fails — or the frame gets evicted mid-split — write-back and
        re-decoding fall back to those bytes, so every previously committed
        entry survives and only the failing operation is lost.  Splits are
        rare, so the extra serialisation does not affect the hot path.
        """
        frame = self.pool.frame(leaf.page_id)
        if frame is None or frame.decoded is not leaf or not frame.decoded_dirty:
            # The frame bytes (or the disk copy) already hold committed state.
            return
        if restore is ...:
            pending_key = leaf.keys.pop(idx)
            pending_value = leaf.values.pop(idx)
        else:
            pending_value = leaf.values[idx]
            leaf.values[idx] = restore
        try:
            frame.materialize()
        finally:
            if restore is ...:
                leaf.keys.insert(idx, pending_key)
                leaf.values.insert(idx, pending_value)
            else:
                leaf.values[idx] = pending_value
        frame.decoded_dirty = True
        # materialize() refreshed the size bookkeeping for the committed
        # state; the re-applied mutation makes it unknown again.
        leaf.invalidate_size()

    def _reset_frame(self, leaf: _Node) -> None:
        """Drop a leaf's decoded slot after a failed split.

        Subsequent reads re-decode the frame's (checkpointed, committed)
        bytes, so the resident view and the write-back view cannot diverge.
        A failure after the first split iteration of a cascading split still
        leaves modified ancestors as-is — the same partial-split corruption
        the eager-serialisation engine produced on this path.
        """
        frame = self.pool.frame(leaf.page_id)
        if frame is not None and frame.decoded is leaf:
            frame.decoded = None
            frame.decoded_dirty = False
            frame.encoder = None

    def _quiesce_frame(self, node: _Node) -> None:
        """Detach a dirty decoded node from its frame before splitting it.

        The node about to split may no longer fit in a page; if its frame is
        evicted while the split allocates sibling pages, write-back would try
        to serialise the overfull node and fail.  Detaching reverts the frame
        to its last materialized bytes (a consistent pre-operation state); the
        split re-attaches the node, post-split and fitting, via
        ``_write_node`` before anything else reads the page.
        """
        frame = self.pool.frame(node.page_id)
        if frame is not None and frame.decoded is node and frame.decoded_dirty:
            frame.decoded = None
            frame.decoded_dirty = False
            frame.encoder = None

    def _split(self, path: list[_Node]) -> None:
        node = path[-1]
        while self._needs_split(node):
            self._quiesce_frame(node)
            mid = len(node.keys) // 2
            if node.is_leaf:
                sibling = self._new_node(is_leaf=True)
                sibling.keys = node.keys[mid:]
                sibling.values = node.values[mid:]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
                sibling.next_leaf = node.next_leaf
                node.next_leaf = sibling.page_id
                separator = sibling.keys[0]
            else:
                sibling = self._new_node(is_leaf=False)
                separator = node.keys[mid]
                sibling.keys = node.keys[mid + 1:]
                sibling.children = node.children[mid + 1:]
                node.keys = node.keys[:mid]
                node.children = node.children[:mid + 1]
            node.invalidate_size()
            # Validate both halves before publishing either, so an oversized
            # half (a single value too big to share a page) aborts the split
            # without persisting a partial result.
            self._ensure_fits(node)
            self._ensure_fits(sibling)
            self._write_node(node)
            self._write_node(sibling)

            if len(path) == 1:
                new_root = self._new_node(is_leaf=False)
                new_root.keys = [separator]
                new_root.children = [node.page_id, sibling.page_id]
                self._write_node(new_root)
                self._root_id = new_root.page_id
                return
            parent = path[-2]
            idx = self._child_index(parent.keys, separator)
            parent.keys.insert(idx, separator)
            parent.children.insert(idx + 1, sibling.page_id)
            parent.note_separator(separator)
            self._write_node(parent)
            path = path[:-1]
            node = parent

    def _range_items(
        self,
        low: Any,
        high: Any,
        inclusive: tuple[bool, bool],
    ) -> Iterator[tuple[Any, Any]]:
        include_low, include_high = inclusive
        if low is None:
            node = self._read_node(self._root_id)
            while not node.is_leaf:
                node = self._read_node(node.children[0])
            start = 0
        else:
            node = self._find_leaf(low)
            start = self._position(node.keys, low)
            if start < len(node.keys) and node.keys[start] == low and not include_low:
                start += 1
        while node is not None:
            # Snapshot the leaf's entries and successor: cached nodes are
            # shared objects, and a consumer that mutates the tree
            # mid-iteration must keep seeing the leaf as it was when the scan
            # reached it (the semantics the decode-per-access engine provided
            # for free).  next_leaf in particular must not be re-read after
            # yielding — a split under the cursor would point it at a fresh
            # sibling full of already-yielded entries.
            keys = node.keys[start:]
            values = node.values[start:]
            next_leaf = node.next_leaf
            for idx, key in enumerate(keys):
                if high is not None:
                    if key > high or (key == high and not include_high):
                        return
                yield key, values[idx]
            node = self._read_node(next_leaf) if next_leaf is not None else None
            start = 0

    def _range_items_reverse(
        self,
        low: Any,
        high: Any,
        inclusive: tuple[bool, bool],
    ) -> Iterator[tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs in descending key order.

        The leaf chain is singly linked, so each predecessor step re-descends
        from the root with a strictly tightening upper bound — O(height)
        charged reads per leaf the consumer actually drains, never the whole
        range.  Re-descending (rather than keeping a descent stack) makes the
        walk immune to mutations between yields: a leaf that splits ahead of
        the cursor is found again through the current root, so committed keys
        can neither be skipped nor repeated — yielded keys strictly decrease.
        """
        include_low, include_high = inclusive
        bound = high
        bound_inclusive = include_high
        while True:
            # Descend to the rightmost leaf whose range can contain keys
            # below the bound, remembering the greatest separator left of the
            # path (the fallback bound when the leaf turns out empty).
            node = self._read_node(self._root_id)
            range_low: Any = _NO_SEPARATOR
            while not node.is_leaf:
                if bound is None:
                    idx = len(node.children) - 1
                elif bound_inclusive:
                    idx = self._child_index(node.keys, bound)
                else:
                    idx = self._position(node.keys, bound)
                if idx > 0:
                    range_low = node.keys[idx - 1]
                node = self._read_node(node.children[idx])
            if bound is None:
                end = len(node.keys)
            else:
                end = self._position(node.keys, bound)
                if (bound_inclusive and end < len(node.keys)
                        and node.keys[end] == bound):
                    end += 1
            keys = node.keys[:end]
            values = node.values[:end]
            for idx in range(end - 1, -1, -1):
                key = keys[idx]
                if low is not None and (key < low or (key == low and not include_low)):
                    return
                yield key, values[idx]
            if keys:
                bound = keys[0]
            elif range_low is not _NO_SEPARATOR:
                bound = range_low
            else:
                return  # the leftmost subtree is exhausted
            bound_inclusive = False
            if low is not None and not low < bound:
                # Every remaining key is < bound <= low: out of range.
                return
