"""A paged B+-tree.

The SVR paper implements the Score table, ListScore/ListChunk tables, short
inverted lists and the (clustered) Score-method long list as BerkeleyDB
B+-trees.  This module provides the equivalent: an ordered map whose nodes are
serialised into pages and fetched through the shared buffer pool, so every
lookup, insert and range scan is charged the same way BerkeleyDB would charge
it.

Keys may be any totally ordered, picklable Python values (ints, floats,
strings, or tuples thereof).  Values must be picklable and small relative to
the page size; large payloads belong in a :class:`~repro.storage.heap_file.HeapFile`.

Deletions remove entries but do not rebalance nodes; empty leaves are unlinked
from their parents.  This matches the reproduction's needs (the paper never
relies on delete-heavy B+-tree behaviour) while keeping iteration order and
lookup semantics exact.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Iterator

from repro.errors import DuplicateKeyError, KeyNotFoundError, StorageError
from repro.storage.buffer_pool import BufferPool


def default_order(page_size: int) -> int:
    """Maximum node fan-out for a page size.

    Nodes split primarily when their *serialized size* approaches the page
    capacity (see :meth:`BPlusTree._needs_split`), so this value is only an
    upper bound on the entry count; it keeps binary searches over a node cheap.
    """
    return max(16, min(128, page_size // 16))


class _Node:
    """In-memory representation of a B+-tree node (leaf or internal)."""

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children", "next_leaf")

    def __init__(
        self,
        page_id: int,
        is_leaf: bool,
        keys: list[Any] | None = None,
        values: list[Any] | None = None,
        children: list[int] | None = None,
        next_leaf: int | None = None,
    ) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys = keys if keys is not None else []
        self.values = values if values is not None else []
        self.children = children if children is not None else []
        self.next_leaf = next_leaf

    def to_bytes(self) -> bytes:
        payload = (self.is_leaf, self.keys, self.values, self.children, self.next_leaf)
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, page_id: int, data: bytes) -> "_Node":
        is_leaf, keys, values, children, next_leaf = pickle.loads(data)
        return cls(page_id, is_leaf, keys, values, children, next_leaf)


class BPlusTree:
    """An ordered map stored in pages and accessed through a buffer pool.

    Parameters
    ----------
    buffer_pool:
        Shared buffer pool used for all node reads and writes.
    order:
        Maximum number of keys per node before it splits.
    name:
        Optional human-readable name used in error messages and statistics.
    unique:
        When true (the default), inserting an existing key overwrites its
        value; :meth:`insert` with ``overwrite=False`` raises
        :class:`~repro.errors.DuplicateKeyError` instead.
    """

    def __init__(
        self,
        buffer_pool: BufferPool,
        order: int | None = None,
        name: str = "btree",
        unique: bool = True,
    ) -> None:
        if order is None:
            order = default_order(buffer_pool.disk.page_size)
        if order < 4:
            raise StorageError(f"B+-tree order must be at least 4, got {order}")
        self.pool = buffer_pool
        self.order = order
        self.name = name
        self.unique = unique
        self._size = 0
        root = self._new_node(is_leaf=True)
        self._root_id = root.page_id
        self._write_node(root)

    # -- public API ----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        try:
            self.get(key)
        except KeyNotFoundError:
            return False
        return True

    def get(self, key: Any, default: Any = ...) -> Any:
        """Return the value stored under ``key``.

        Raises :class:`~repro.errors.KeyNotFoundError` when the key is absent
        and no ``default`` was supplied.
        """
        leaf = self._find_leaf(key)
        idx = self._position(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        if default is not ...:
            return default
        raise KeyNotFoundError(f"{self.name}: key {key!r} not found")

    def insert(self, key: Any, value: Any, overwrite: bool = True) -> None:
        """Insert or update an entry.

        With ``overwrite=False`` an existing key raises
        :class:`~repro.errors.DuplicateKeyError`.
        """
        path = self._path_to_leaf(key)
        leaf = path[-1]
        idx = self._position(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            if not overwrite:
                raise DuplicateKeyError(f"{self.name}: duplicate key {key!r}")
            leaf.values[idx] = value
            if self._needs_split(leaf):
                self._split(path)
            else:
                self._write_node(leaf)
            return
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self._size += 1
        if self._needs_split(leaf):
            self._split(path)
        else:
            self._write_node(leaf)

    def delete(self, key: Any) -> Any:
        """Remove an entry and return its value.

        Raises :class:`~repro.errors.KeyNotFoundError` when the key is absent.
        """
        path = self._path_to_leaf(key)
        leaf = path[-1]
        idx = self._position(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyNotFoundError(f"{self.name}: key {key!r} not found")
        value = leaf.values.pop(idx)
        leaf.keys.pop(idx)
        self._size -= 1
        self._write_node(leaf)
        return value

    def items(
        self,
        low: Any = None,
        high: Any = None,
        inclusive: tuple[bool, bool] = (True, True),
        reverse: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Iterate over ``(key, value)`` pairs in key order.

        ``low``/``high`` bound the range (``None`` means unbounded); the
        ``inclusive`` flags control whether each bound is included.  Reverse
        iteration materialises the selected range first (the leaf chain is
        singly linked, as in most B+-tree implementations).
        """
        pairs = self._range_items(low, high, inclusive)
        if reverse:
            yield from reversed(list(pairs))
        else:
            yield from pairs

    def keys(self) -> Iterator[Any]:
        """Iterate over keys in ascending order."""
        for key, _value in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        """Iterate over values in ascending key order."""
        for _key, value in self.items():
            yield value

    def first(self) -> tuple[Any, Any]:
        """Return the smallest ``(key, value)`` pair."""
        for pair in self.items():
            return pair
        raise KeyNotFoundError(f"{self.name}: tree is empty")

    def last(self) -> tuple[Any, Any]:
        """Return the largest ``(key, value)`` pair."""
        pair: tuple[Any, Any] | None = None
        for pair in self.items():
            pass
        if pair is None:
            raise KeyNotFoundError(f"{self.name}: tree is empty")
        return pair

    def update_value(self, key: Any, fn: Callable[[Any], Any]) -> Any:
        """Apply ``fn`` to the value stored under ``key`` and store the result."""
        leaf = self._find_leaf(key)
        idx = self._position(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyNotFoundError(f"{self.name}: key {key!r} not found")
        new_value = fn(leaf.values[idx])
        leaf.values[idx] = new_value
        self._write_node(leaf)
        return new_value

    def clear(self) -> None:
        """Remove every entry (allocates a fresh root leaf)."""
        root = self._new_node(is_leaf=True)
        self._root_id = root.page_id
        self._write_node(root)
        self._size = 0

    def height(self) -> int:
        """Number of levels from root to leaf (1 for a single-leaf tree)."""
        levels = 1
        node = self._read_node(self._root_id)
        while not node.is_leaf:
            node = self._read_node(node.children[0])
            levels += 1
        return levels

    def node_count(self) -> int:
        """Total number of nodes reachable from the root."""
        count = 0
        stack = [self._root_id]
        while stack:
            node = self._read_node(stack.pop())
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def size_bytes(self) -> int:
        """Serialized size of every node, in bytes."""
        total = 0
        stack = [self._root_id]
        while stack:
            node = self._read_node(stack.pop())
            total += len(node.to_bytes())
            if not node.is_leaf:
                stack.extend(node.children)
        return total

    def page_ids(self) -> set[int]:
        """Set of page ids used by this tree (for targeted cache drops)."""
        ids: set[int] = set()
        stack = [self._root_id]
        while stack:
            page_id = stack.pop()
            ids.add(page_id)
            node = self._read_node(page_id)
            if not node.is_leaf:
                stack.extend(node.children)
        return ids

    # -- internals -------------------------------------------------------------

    def _new_node(self, is_leaf: bool) -> _Node:
        page = self.pool.allocate()
        return _Node(page_id=page.page_id, is_leaf=is_leaf)

    def _read_node(self, page_id: int) -> _Node:
        page = self.pool.get(page_id)
        if not page.data:
            return _Node(page_id=page_id, is_leaf=True)
        return _Node.from_bytes(page_id, page.data)

    def _write_node(self, node: _Node) -> None:
        page = self.pool.get(node.page_id)
        payload = node.to_bytes()
        if len(payload) > page.capacity:
            # Nodes are split on entry count; a payload larger than a page means
            # individual values are too big for a B+-tree leaf.
            raise StorageError(
                f"{self.name}: serialized node ({len(payload)} bytes) exceeds the "
                f"page size ({page.capacity} bytes); store large values in a "
                f"HeapFile and keep only references in the tree"
            )
        page.write(payload)
        self.pool.put(page)

    @staticmethod
    def _position(keys: list[Any], key: Any) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _find_leaf(self, key: Any) -> _Node:
        node = self._read_node(self._root_id)
        while not node.is_leaf:
            idx = self._child_index(node.keys, key)
            node = self._read_node(node.children[idx])
        return node

    def _path_to_leaf(self, key: Any) -> list[_Node]:
        path = [self._read_node(self._root_id)]
        while not path[-1].is_leaf:
            node = path[-1]
            idx = self._child_index(node.keys, key)
            path.append(self._read_node(node.children[idx]))
        return path

    @staticmethod
    def _child_index(keys: list[Any], key: Any) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if key < keys[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _needs_split(self, node: _Node) -> bool:
        """Whether a node must split before being written to its page.

        A node splits when it exceeds the fan-out cap or when its serialized
        form would no longer fit comfortably in one page (the real constraint:
        nodes are stored one per page, so density is driven by entry size).
        """
        if len(node.keys) > self.order:
            return True
        if len(node.keys) < 2:
            return False
        capacity = self.pool.disk.page_size
        return len(node.to_bytes()) > capacity - 64

    def _split(self, path: list[_Node]) -> None:
        node = path[-1]
        while self._needs_split(node):
            mid = len(node.keys) // 2
            if node.is_leaf:
                sibling = self._new_node(is_leaf=True)
                sibling.keys = node.keys[mid:]
                sibling.values = node.values[mid:]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
                sibling.next_leaf = node.next_leaf
                node.next_leaf = sibling.page_id
                separator = sibling.keys[0]
            else:
                sibling = self._new_node(is_leaf=False)
                separator = node.keys[mid]
                sibling.keys = node.keys[mid + 1:]
                sibling.children = node.children[mid + 1:]
                node.keys = node.keys[:mid]
                node.children = node.children[:mid + 1]
            self._write_node(node)
            self._write_node(sibling)

            if len(path) == 1:
                new_root = self._new_node(is_leaf=False)
                new_root.keys = [separator]
                new_root.children = [node.page_id, sibling.page_id]
                self._write_node(new_root)
                self._root_id = new_root.page_id
                return
            parent = path[-2]
            idx = self._child_index(parent.keys, separator)
            parent.keys.insert(idx, separator)
            parent.children.insert(idx + 1, sibling.page_id)
            self._write_node(parent)
            path = path[:-1]
            node = parent

    def _range_items(
        self,
        low: Any,
        high: Any,
        inclusive: tuple[bool, bool],
    ) -> Iterator[tuple[Any, Any]]:
        include_low, include_high = inclusive
        if low is None:
            node = self._read_node(self._root_id)
            while not node.is_leaf:
                node = self._read_node(node.children[0])
            start = 0
        else:
            node = self._find_leaf(low)
            start = self._position(node.keys, low)
            if start < len(node.keys) and node.keys[start] == low and not include_low:
                start += 1
        while node is not None:
            for idx in range(start, len(node.keys)):
                key = node.keys[idx]
                if high is not None:
                    if key > high or (key == high and not include_high):
                        return
                yield key, node.values[idx]
            node = (
                self._read_node(node.next_leaf) if node.next_leaf is not None else None
            )
            start = 0
