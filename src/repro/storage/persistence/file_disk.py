"""File-backed disk: the ``SimulatedDisk`` page API over one paged file.

The paper's experiments run on a real disk-resident engine (BerkeleyDB over an
805 MB corpus); the memory-backed :class:`~repro.storage.disk.SimulatedDisk`
caps full-scale runs at RAM and loses everything on process exit.
:class:`FileBackedDisk` lifts both limits while keeping the *accounting*
bit-for-bit identical: it subclasses ``SimulatedDisk`` and overrides only the
storage-backend hooks, so every read/write charges exactly the counters the
memory backend would charge, and page payload bytes are identical under
``PYTHONHASHSEED=0``.

Durability protocol (redo logging, no-force / steal-safe):

* ``pages.dat`` — fixed-slot paged file holding the image of the **last
  checkpoint**: slot *i* occupies bytes ``[i * page_size, (i+1) * page_size)``
  padded with zeros; payload lengths live in the catalog, not the file.
* ``wal.log`` — every page written since the checkpoint, plus one ``COMMIT``
  record per batch carrying the serialized catalog (see
  :mod:`repro.storage.persistence.wal`).  Page images buffer in memory and
  spill to the log when the buffer exceeds ``wal_buffer_bytes``, so RAM holds
  at most one buffer's worth of un-spilled images regardless of corpus size.
* ``meta.pkl`` — the checkpoint catalog (free-page bitmap, payload lengths,
  next page id, plus whatever the environment adds), written atomically via
  rename.

``checkpoint()`` folds the committed overlay into ``pages.dat``, rewrites
``meta.pkl`` and truncates the log; :func:`FileBackedDisk.open` loads the
checkpoint and replays the WAL's committed prefix, which restores exactly the
state of the last group commit — a crash mid-batch loses only the uncommitted
tail.

The free-page bitmap records which page ids are live.  Allocation stays
monotonic (freed ids are never reused) to mirror the memory backend's id
sequence exactly — the bitmap exists so recovery knows which slots are live
and so a future compactor could reclaim the dead ones.
"""

from __future__ import annotations

import os
import pickle
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    ChecksumError,
    CommitError,
    DiskFullError,
    PageNotFoundError,
    StorageError,
    StoreClosedError,
    TransientIOError,
)
from repro.obs.trace import span
from repro.storage.disk import DiskStats, SimulatedDisk
from repro.storage.faults import run_with_retries
from repro.storage.pager import PAGE_SIZE, Page
from repro.storage.persistence.wal import ReplayResult, WalSlot, WriteAheadLog, replay

_PAGES_FILE = "pages.dat"
_WAL_FILE = "wal.log"
_META_FILE = "meta.pkl"
_META_TMP = "meta.pkl.tmp"

#: Default in-memory budget for not-yet-spilled page images.
DEFAULT_WAL_BUFFER_BYTES = 4 * 1024 * 1024


def fsync_directory(path: str) -> None:
    """fsync a directory so a rename inside it is itself durable.

    ``os.replace`` makes the *file* contents atomic, but the directory entry
    pointing at the new inode lives in the directory's own metadata — on
    power loss before the directory block is flushed, the rename can simply
    vanish.  Best-effort on platforms whose directories cannot be opened.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of a checksum scrub over the checkpointed page file."""

    pages_checked: int = 0
    corrupt_page_ids: tuple[int, ...] = field(default=())

    @property
    def clean(self) -> bool:
        return not self.corrupt_page_ids


class PageBitmap:
    """A dense bitmap over page ids marking which pages are live.

    This is the persisted liveness authority of the disk's free/live page
    set: compact enough to ride inside every ``COMMIT`` record (one bit per
    page), and sufficient for recovery to reconstruct
    ``contains``/``page_count`` without scanning the paged file.  Payload
    sizes of non-empty pages travel separately in the catalog's lengths
    dict; empty live pages exist only here.
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: bytearray | None = None) -> None:
        self._bits = bits if bits is not None else bytearray()

    def set(self, page_id: int) -> None:
        byte, bit = divmod(page_id, 8)
        if byte >= len(self._bits):
            self._bits.extend(b"\x00" * (byte + 1 - len(self._bits)))
        self._bits[byte] |= 1 << bit

    def clear(self, page_id: int) -> None:
        byte, bit = divmod(page_id, 8)
        if byte < len(self._bits):
            self._bits[byte] &= ~(1 << bit)

    def __contains__(self, page_id: int) -> bool:
        byte, bit = divmod(page_id, 8)
        return byte < len(self._bits) and bool(self._bits[byte] & (1 << bit))

    def live_ids(self) -> list[int]:
        """All live page ids in ascending order."""
        ids = []
        for byte, value in enumerate(self._bits):
            if not value:
                continue
            base = byte * 8
            for bit in range(8):
                if value & (1 << bit):
                    ids.append(base + bit)
        return ids

    def to_bytes(self) -> bytes:
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PageBitmap":
        return cls(bytearray(data))


class FileBackedDisk(SimulatedDisk):
    """The exact ``SimulatedDisk`` API and accounting over a single paged file.

    Parameters
    ----------
    path:
        Directory holding ``pages.dat``, ``wal.log`` and ``meta.pkl``
        (created when missing).  Use :meth:`open` to recover an existing
        directory; the constructor starts a fresh, empty disk and refuses a
        directory that already contains one.
    page_size:
        Page size in bytes; must match across reopenings (persisted in the
        checkpoint catalog).
    wal_buffer_bytes:
        In-memory budget for page images not yet spilled to the WAL file.
    """

    def __init__(self, path: str, page_size: int = PAGE_SIZE,
                 wal_buffer_bytes: int = DEFAULT_WAL_BUFFER_BYTES) -> None:
        os.makedirs(path, exist_ok=True)
        if os.path.exists(os.path.join(path, _META_FILE)):
            raise StorageError(
                f"{path!r} already holds a persistent disk; "
                "use FileBackedDisk.open() to recover it"
            )
        self.path = path
        self.page_size = page_size
        self.stats = DiskStats()
        self._pages: dict[int, Page] = {}  # unused; kept for dataclass repr
        self._next_page_id = 0
        self._last_accessed = None
        self._wal_buffer_bytes = wal_buffer_bytes
        self.fault_injector = None
        #: payload length per live page id (the in-memory face of the bitmap).
        self._lengths: dict[int, int] = {}
        #: crc32 per non-empty page slot in ``pages.dat`` (set when a page is
        #: folded at checkpoint; verified when its slot is read back).
        self._checksums: dict[int, int] = {}
        #: page id -> payload bytes (not yet spilled) or WalSlot (spilled),
        #: for writes of the current uncommitted batch.
        self._uncommitted: dict[int, "bytes | WalSlot"] = {}
        #: same mapping for committed-but-not-yet-checkpointed writes.
        self._overlay: dict[int, "bytes | WalSlot"] = {}
        self._buffered_bytes = 0
        #: page ids below this bound have a valid slot in ``pages.dat``.
        self._checkpointed_next_id = 0
        self.committed_batches = 0
        self._closed = False
        self._pages_file = open(os.path.join(path, _PAGES_FILE), "w+b")
        self.wal = WriteAheadLog(os.path.join(path, _WAL_FILE))
        if self.wal.size_bytes() > 0:
            # A stale log without a checkpoint belongs to an abandoned
            # pre-first-checkpoint run; a fresh disk starts clean.
            self.wal.truncate(0)

    # -- recovery ------------------------------------------------------------

    @classmethod
    def open(cls, path: str,
             wal_buffer_bytes: int = DEFAULT_WAL_BUFFER_BYTES,
             max_batch: "int | None" = None
             ) -> tuple["FileBackedDisk", "dict[str, Any] | None"]:
        """Recover a disk from its directory.

        Loads the checkpoint catalog, replays the WAL's committed prefix on
        top, truncates the torn/uncommitted tail, and returns
        ``(disk, catalog)`` where ``catalog`` is the environment-level dict of
        the most recent commit (checkpoint when no batch committed since).

        ``max_batch`` caps the replay at a batch id (commits beyond it are
        truncated with the tail) — sharded recovery's rollback of a torn
        group-commit fan-out.  It cannot reach below the last checkpoint:
        batches folded into the paged file are not in the log any more.
        """
        meta_path = os.path.join(path, _META_FILE)
        if not os.path.exists(meta_path):
            raise StorageError(f"{path!r} does not hold a persistent disk")
        with open(meta_path, "rb") as handle:
            meta = pickle.load(handle)
        replayed: ReplayResult = replay(os.path.join(path, _WAL_FILE),
                                        max_batch=max_batch)
        catalog = meta
        if replayed.catalog is not None:
            catalog = pickle.loads(replayed.catalog)

        disk = cls.__new__(cls)
        disk.path = path
        disk.page_size = catalog["disk"]["page_size"]
        disk.stats = DiskStats()
        disk._pages = {}
        disk._wal_buffer_bytes = wal_buffer_bytes
        disk._last_accessed = None
        disk.fault_injector = None
        disk._uncommitted = {}
        disk._buffered_bytes = 0
        disk._closed = False
        disk._restore_disk_state(catalog["disk"])
        disk._checkpointed_next_id = meta["disk"]["next_page_id"]
        disk.committed_batches = replayed.batch_id or meta.get("batch", 0)
        disk._pages_file = open(os.path.join(path, _PAGES_FILE), "r+b")
        disk.wal = WriteAheadLog(os.path.join(path, _WAL_FILE))
        if disk.wal.size_bytes() > replayed.valid_bytes:
            disk.wal.truncate(replayed.valid_bytes)
        disk._overlay = dict(replayed.pages)
        return disk, catalog

    def _restore_disk_state(self, state: dict) -> None:
        # The bitmap is the liveness authority (empty live pages appear only
        # there); the lengths dict carries payload sizes for non-empty pages.
        bitmap = PageBitmap.from_bytes(state["bitmap"])
        lengths = state["lengths"]
        self._lengths = {page_id: lengths.get(page_id, 0)
                         for page_id in bitmap.live_ids()}
        self._next_page_id = state["next_page_id"]
        # Catalogs written before per-page checksums existed lack the key;
        # their pages simply go unverified until the next checkpoint.
        self._checksums = dict(state.get("checksums", {}))

    # -- storage backend hooks (the accounting code lives in the base class) --

    def _backend_create(self, page_id: int) -> None:
        self._check_open()
        self._lengths[page_id] = 0

    def _backend_fetch(self, page_id: int) -> "Page | None":
        self._check_open()
        length = self._lengths.get(page_id)
        if length is None:
            return None
        return Page(page_id=page_id, capacity=self.page_size,
                    data=self._payload_of(page_id, length))

    def _backend_store(self, page: Page) -> None:
        self._check_open()
        previous = self._uncommitted.get(page.page_id)
        if isinstance(previous, bytes):
            self._buffered_bytes -= len(previous)
        self._uncommitted[page.page_id] = page.data
        self._lengths[page.page_id] = len(page.data)
        self._buffered_bytes += len(page.data)
        if self._buffered_bytes > self._wal_buffer_bytes:
            self._spill()

    def _backend_discard(self, page_id: int) -> None:
        self._check_open()
        self._lengths.pop(page_id, None)
        self._checksums.pop(page_id, None)
        previous = self._uncommitted.pop(page_id, None)
        if isinstance(previous, bytes):
            self._buffered_bytes -= len(previous)
        self._overlay.pop(page_id, None)

    def _backend_contains(self, page_id: int) -> bool:
        return page_id in self._lengths

    def _backend_page_count(self) -> int:
        return len(self._lengths)

    def _backend_used_bytes(self) -> int:
        return sum(self._lengths.values())

    # -- payload resolution ----------------------------------------------------

    def _payload_of(self, page_id: int, length: int) -> bytes:
        """Latest payload bytes of a live page, wherever they currently live."""
        image = self._uncommitted.get(page_id)
        if image is None:
            image = self._overlay.get(page_id)
        if isinstance(image, WalSlot):
            return self.wal.read_slot(image)
        if image is not None:
            return image
        if page_id < self._checkpointed_next_id and length > 0:
            self._pages_file.seek(page_id * self.page_size)
            data = self._pages_file.read(length)
            if len(data) != length:
                raise StorageError(
                    f"{self.path}: page {page_id} truncated in pages.dat "
                    f"({len(data)} of {length} bytes)"
                )
            if self.fault_injector is not None:
                data = self.fault_injector.corrupt("page_read", data)
            return self._verify_checksum(page_id, data)
        return b""

    def _verify_checksum(self, page_id: int, data: bytes) -> bytes:
        """Check a ``pages.dat`` slot image against its per-page checksum.

        Bit-rot under data at rest (injected or real) surfaces here as a
        typed :class:`~repro.errors.ChecksumError` tagged with the failure
        domain — instead of pickle garbage deep inside a B+-tree node decode.
        Pages from pre-checksum catalogs have no recorded checksum and pass
        unverified.
        """
        expected = self._checksums.get(page_id)
        if expected is not None and zlib.crc32(data) != expected:
            error = ChecksumError(
                f"{self.path}: page {page_id} failed its checksum in pages.dat "
                "(bit-rot or torn slot write)"
            )
            if self.fault_injector is not None:
                self.fault_injector.tag(error)
            raise error
        return data

    def scrub(self) -> ScrubReport:
        """Verify every checkpointed page slot against its checksum.

        Reads go straight to ``pages.dat`` (no accounting, no cache) and only
        cover pages whose authoritative image is the checkpoint slot — pages
        overlaid by WAL images are already CRC-framed by the log.  Returns a
        :class:`ScrubReport` instead of raising, so recovery tooling can
        enumerate all rot at once.
        """
        self._check_open()
        checked = 0
        corrupt: list[int] = []
        for page_id, length in sorted(self._lengths.items()):
            if (length == 0 or page_id >= self._checkpointed_next_id
                    or page_id in self._uncommitted or page_id in self._overlay):
                continue
            expected = self._checksums.get(page_id)
            if expected is None:
                continue
            self._pages_file.seek(page_id * self.page_size)
            data = self._pages_file.read(length)
            checked += 1
            if len(data) != length or zlib.crc32(data) != expected:
                corrupt.append(page_id)
        return ScrubReport(pages_checked=checked, corrupt_page_ids=tuple(corrupt))

    def _spill(self) -> None:
        """Move buffered page images into the WAL file, keeping only slots.

        This bounds the disk's memory footprint: between commits, RAM holds at
        most ``wal_buffer_bytes`` of raw images plus an ``(offset, length)``
        pair per written page.  Spilled records are uncommitted until the next
        :meth:`commit_batch` — replay ignores them without a ``COMMIT``.
        """
        injector = self.fault_injector
        with span("wal.append"):
            for page_id, image in self._uncommitted.items():
                if isinstance(image, bytes):
                    if injector is None:
                        self._uncommitted[page_id] = self.wal.append_write(
                            page_id, image
                        )
                    else:
                        # A torn append leaves a partial frame in the file; the
                        # reset rolls the log back to the pre-append offset so
                        # every retry starts from a clean tail.
                        start = self.wal.size_bytes()
                        self._uncommitted[page_id] = run_with_retries(
                            injector, "wal_append",
                            lambda image=image, page_id=page_id:
                                self.wal.append_write(page_id, image),
                            reset=lambda start=start: self.wal.truncate(start),
                        )
        self._buffered_bytes = 0

    # -- durability protocol -----------------------------------------------------

    def disk_state(self) -> dict:
        """The disk's slice of the catalog (bitmap, lengths, allocation cursor).

        Liveness is carried by the free-page bitmap alone (one bit per page);
        the lengths dict records payload sizes only for non-empty pages, so
        the two structures are complementary, not redundant.
        """
        bitmap = PageBitmap()
        for page_id in self._lengths:
            bitmap.set(page_id)
        return {
            "page_size": self.page_size,
            "next_page_id": self._next_page_id,
            "bitmap": bitmap.to_bytes(),
            "lengths": {page_id: length
                        for page_id, length in self._lengths.items() if length},
            "checksums": dict(self._checksums),
        }

    def commit_batch(self, catalog: dict) -> int:
        """Group-commit the current batch with the environment catalog.

        ``catalog`` must contain everything recovery needs besides the page
        images (store roots, application state); the disk adds its own state
        under ``"disk"``.  Returns the new committed-batch id.
        """
        self._check_open()
        catalog = dict(catalog)
        catalog["disk"] = self.disk_state()
        self._spill()
        batch_id = self.committed_batches + 1
        catalog["batch"] = batch_id
        blob = pickle.dumps(catalog)
        # Atomic commit: nothing below mutates commit state until the COMMIT
        # record is durably fsynced.  A transient/torn/fsync fault rolls the
        # log back to the pre-commit offset (the record was never durable —
        # power-loss semantics) and retries; exhaustion escalates to a typed
        # CommitError with the batch still uncommitted, fully in memory, and
        # retryable — recovery after a crash lands on the *previous* commit.
        pre_commit = self.wal.size_bytes()

        def rollback() -> None:
            if self.wal.size_bytes() > pre_commit:
                self.wal.truncate(pre_commit)

        try:
            run_with_retries(
                self.fault_injector, "wal_commit",
                lambda: self.wal.commit(batch_id, blob),
                reset=rollback,
            )
        except StorageError as exc:
            rollback()
            error = CommitError(
                f"{self.path}: batch {batch_id} could not be made durable; "
                "rolled back to the last committed state"
            )
            if self.fault_injector is not None:
                self.fault_injector.tag(error)
            raise error from exc
        self.committed_batches = batch_id
        self._overlay.update(self._uncommitted)
        self._uncommitted.clear()
        self._buffered_bytes = 0
        return self.committed_batches

    def checkpoint(self, catalog: dict) -> None:
        """Fold the committed overlay into ``pages.dat`` and reset the WAL.

        Must be called at a batch boundary (the environment commits first);
        uncommitted writes would otherwise leak into the checkpoint image.
        """
        self._check_open()
        if self._uncommitted:
            raise StorageError(
                f"{self.path}: checkpoint with {len(self._uncommitted)} "
                "uncommitted page writes; commit the batch first"
            )
        # Fold first, catalog second: the catalog's checksum map must describe
        # the slots as this checkpoint leaves them.  Until the final meta
        # replace succeeds nothing is cleared, so any typed failure below
        # leaves the old checkpoint + intact WAL — still fully recoverable.
        injector = self.fault_injector
        for page_id, image in self._overlay.items():
            if page_id not in self._lengths:
                continue  # freed after the write; the slot is dead
            payload = self.wal.read_slot(image) if isinstance(image, WalSlot) else image
            if injector is None:
                self._pages_file.seek(page_id * self.page_size)
                self._pages_file.write(payload)
            else:
                # Slot writes are idempotent (same offset every attempt), so a
                # torn write needs no reset — the retry simply rewrites it.
                run_with_retries(
                    injector, "data_write",
                    lambda page_id=page_id, payload=payload:
                        self._injected_slot_write(page_id, payload),
                )
            if payload:
                self._checksums[page_id] = zlib.crc32(payload)
            else:
                self._checksums.pop(page_id, None)
        # Zero-fill to the allocation cursor so every live slot exists
        # (sparse where the filesystem supports it).
        self._pages_file.truncate(self._next_page_id * self.page_size)
        self._pages_file.flush()
        run_with_retries(
            injector, "data_fsync",
            lambda: self._injected_fsync("data_fsync", self._pages_file),
        )
        catalog = dict(catalog)
        catalog["disk"] = self.disk_state()
        catalog["batch"] = self.committed_batches
        # The tmp file is rewritten from scratch on every attempt, so a torn
        # meta write needs no reset either.
        run_with_retries(
            injector, "meta_write", lambda: self._write_meta(catalog)
        )
        os.replace(os.path.join(self.path, _META_TMP),
                   os.path.join(self.path, _META_FILE))
        # Without the directory fsync the rename itself can be lost on power
        # failure, resurrecting the previous checkpoint under a truncated WAL.
        fsync_directory(self.path)
        self._overlay.clear()
        self._checkpointed_next_id = self._next_page_id
        self.wal.truncate(0)

    def _injected_slot_write(self, page_id: int, payload: bytes) -> None:
        """One ``pages.dat`` slot write under the fault injector."""
        injector = self.fault_injector
        kind = injector.roll("data_write") if injector is not None else None
        if kind == "enospc":
            raise injector.tag(DiskFullError(
                f"{self.path}: injected ENOSPC writing page {page_id}"
            ))
        self._pages_file.seek(page_id * self.page_size)
        if kind == "torn":
            self._pages_file.write(payload[: max(1, len(payload) // 2)])
            raise TransientIOError(f"injected torn slot write of page {page_id}")
        if kind == "transient":
            raise TransientIOError(f"injected transient slot write of page {page_id}")
        self._pages_file.write(payload)

    def _injected_fsync(self, op: str, handle) -> None:
        """One fsync under the fault injector (retry == call it again)."""
        injector = self.fault_injector
        if injector is not None and injector.roll(op) == "fsync":
            raise TransientIOError(f"injected {op} failure")
        os.fsync(handle.fileno())

    def _write_meta(self, catalog: dict) -> None:
        """Write and fsync the checkpoint catalog to the tmp file."""
        injector = self.fault_injector
        kind = injector.roll("meta_write") if injector is not None else None
        if kind == "transient":
            raise TransientIOError("injected transient meta write")
        tmp_path = os.path.join(self.path, _META_TMP)
        blob = pickle.dumps(catalog, protocol=pickle.HIGHEST_PROTOCOL)
        with open(tmp_path, "wb") as handle:
            if kind == "torn":
                handle.write(blob[: max(1, len(blob) // 2)])
                handle.flush()
                raise TransientIOError("injected torn meta write")
            handle.write(blob)
            handle.flush()
            self._injected_fsync("meta_fsync", handle)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release file handles without checkpointing (idempotent).

        The environment checkpoints before closing in the orderly path;
        closing directly models a crash — committed batches survive, the
        uncommitted tail does not.
        """
        if self._closed:
            return
        self._closed = True
        self._pages_file.close()
        self.wal.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"disk at {self.path!r} is closed")

    # -- introspection -------------------------------------------------------------

    def pending_wal_pages(self) -> int:
        """Pages written since the last group commit (lost if we crash now)."""
        return len(self._uncommitted)

    def overlay_pages(self) -> int:
        """Committed pages not yet folded into ``pages.dat``."""
        return len(self._overlay)
