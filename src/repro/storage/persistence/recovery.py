"""Crash recovery: reopen durable environments from their directories.

Recovery is the read side of the redo protocol: load the checkpoint catalog
(``meta.pkl``), replay the write-ahead log's longest valid committed prefix on
top of the paged file, truncate the torn/uncommitted tail, and rebuild the
environment's stores from the catalog of the last commit.  The recovered
state is exactly the state at the last committed batch boundary — work since
then is gone, work before then is intact, and there is no third possibility.

A sharded environment recovers shard by shard (each shard directory is a
complete plain environment); the routing facades are rebuilt from the root
registry (``sharded.pkl``), and shard 0 — always committed last — carries the
application blob and the batch id of the commit point.
"""

from __future__ import annotations

import os

from repro.errors import StorageError
from repro.obs.events import emit
from repro.storage.environment import StorageEnvironment
from repro.storage.persistence.file_disk import (
    DEFAULT_WAL_BUFFER_BYTES,
    FileBackedDisk,
    _META_FILE,
)
from repro.storage.sharding import (
    ShardedEnvironment,
    _REGISTRY_FILE,
    _shard_path,
)


def is_environment_dir(path: str) -> bool:
    """Whether ``path`` holds a recoverable (plain or sharded) environment."""
    return (os.path.exists(os.path.join(path, _META_FILE))
            or os.path.exists(os.path.join(path, _REGISTRY_FILE)))


def open_environment(path: str, cache_pages: int | None = None,
                     wal_buffer_bytes: int = DEFAULT_WAL_BUFFER_BYTES,
                     max_batch: int | None = None) -> StorageEnvironment:
    """Recover a plain durable environment to its last committed batch.

    ``cache_pages`` overrides the persisted buffer-pool capacity (the cache
    starts cold either way).  The recovered environment's ``recovered_app_state``
    holds the application blob of the commit it landed on.  ``max_batch`` caps
    the WAL replay at a batch id (see :meth:`FileBackedDisk.open`).
    """
    disk, catalog = FileBackedDisk.open(path, wal_buffer_bytes=wal_buffer_bytes,
                                        max_batch=max_batch)
    env = StorageEnvironment.from_recovery(
        disk, catalog, path=path, cache_pages=cache_pages
    )
    emit("recovery", path=path, batch=env.committed_batches)
    return env


def open_sharded_environment(path: str, cache_pages: int | None = None,
                             allow_inconsistent: bool = False
                             ) -> ShardedEnvironment:
    """Recover a sharded durable environment, shard by shard.

    Each shard replays its own WAL; the logical store facades are rebuilt
    from the root registry.  Commits fan out with shard 0 last, so in normal
    operation every shard recovers to the same batch id.  A crash (or an
    injected commit fault) *inside* the fan-out window leaves some shard
    *ahead* of shard 0 (the commit point); such a shard is rolled back to the
    commit point by replaying its WAL only up to shard 0's batch id — the
    overshooting commits are still in its log (fold happens at checkpoint,
    and checkpoints also fan out with shard 0 last), so the rollback is a
    prefix cut.  Only when the overshoot is *not* in the log any more (it
    predates the shard's last checkpoint — a state no crash inside one
    fan-out window can produce) does recovery refuse with a
    :class:`StorageError` naming the per-shard batch ids; pass
    ``allow_inconsistent=True`` to get the environment anyway (for salvage
    tooling that understands the skew).

    A shard *behind* shard 0 is accepted: degraded commits legitimately skip
    quarantined shards (see ``ShardedEnvironment.commit(skip=...)``), so a
    lower batch id only means the shard missed batches while quarantined —
    its own state is still a consistent commit boundary.
    """
    registry_path = os.path.join(path, _REGISTRY_FILE)
    if not os.path.exists(registry_path):
        raise StorageError(f"{path!r} does not hold a sharded environment")
    import pickle

    with open(registry_path, "rb") as handle:
        registry = pickle.load(handle)
    shard_count = registry["shard_count"]
    per_shard = None
    if cache_pages is not None:
        base, remainder = divmod(cache_pages, shard_count)
        per_shard = [max(1, base + (1 if i < remainder else 0))
                     for i in range(shard_count)]
        registry = dict(registry, cache_pages=cache_pages)
    shards = [
        open_environment(
            _shard_path(path, index),
            cache_pages=per_shard[index] if per_shard is not None else None,
        )
        for index in range(shard_count)
    ]
    batches = [shard.committed_batches for shard in shards]
    if any(b > batches[0] for b in batches):
        # Torn group-commit fan-out: some shard committed a batch whose
        # commit point (shard 0's record) never landed.  Its overshooting
        # commits are still in its WAL — folds happen strictly after the
        # whole fan-out — so roll it back by replaying only up to shard 0.
        for index, batch in enumerate(batches):
            if batch <= batches[0]:
                continue
            emit("shard_rollback", shard=index, from_batch=batch,
                 to_batch=batches[0])
            shards[index].crash()
            shards[index] = open_environment(
                _shard_path(path, index),
                cache_pages=per_shard[index] if per_shard is not None else None,
                max_batch=batches[0],
            )
        batches = [shard.committed_batches for shard in shards]
    if not allow_inconsistent and any(b > batches[0] for b in batches):
        for shard in shards:
            shard.crash()
        raise StorageError(
            f"{path!r}: torn commit fan-out — per-shard committed batch ids "
            f"{batches} run ahead of the commit point (shard 0), and the "
            "overshoot predates those shards' last checkpoint (not in their "
            "logs any more), so they cannot be rolled back to the common "
            "boundary"
        )
    return ShardedEnvironment.from_recovery(path, shards, registry)


def open_any_environment(path: str, cache_pages: int | None = None
                         ) -> "StorageEnvironment | ShardedEnvironment":
    """Recover whatever kind of environment lives at ``path``."""
    if os.path.exists(os.path.join(path, _REGISTRY_FILE)):
        return open_sharded_environment(path, cache_pages=cache_pages)
    if os.path.exists(os.path.join(path, _META_FILE)):
        return open_environment(path, cache_pages=cache_pages)
    raise StorageError(f"{path!r} does not hold a persistent environment")
