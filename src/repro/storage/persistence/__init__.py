"""Durable storage: file-backed paging, write-ahead logging, crash recovery.

This package turns the memory-backed simulated storage engine into a real
disk-resident one without changing a single accounting counter:

* :class:`~repro.storage.persistence.file_disk.FileBackedDisk` — the exact
  ``SimulatedDisk`` page API and per-category I/O accounting over one paged
  file with a free-page bitmap.
* :class:`~repro.storage.persistence.wal.WriteAheadLog` — page-granular redo
  log with group-commit batching; the paged file always holds the last
  checkpoint, everything since lives in the log.
* :func:`~repro.storage.persistence.recovery.open_environment` /
  :func:`~repro.storage.persistence.recovery.open_sharded_environment` —
  replay the log's committed prefix and rebuild the environment (stores,
  catalog, application blob) at the last committed batch boundary.

See ARCHITECTURE.md § Persistence for the file layout, record format and the
accounting-fidelity guarantee.
"""

from repro.storage.persistence.file_disk import (
    DEFAULT_WAL_BUFFER_BYTES,
    FileBackedDisk,
    PageBitmap,
    ScrubReport,
    fsync_directory,
)
from repro.storage.persistence.recovery import (
    is_environment_dir,
    open_any_environment,
    open_environment,
    open_sharded_environment,
)
from repro.storage.persistence.wal import (
    ReplayResult,
    WalSlot,
    WalStats,
    WriteAheadLog,
    replay,
)

__all__ = [
    "DEFAULT_WAL_BUFFER_BYTES",
    "FileBackedDisk",
    "PageBitmap",
    "ScrubReport",
    "fsync_directory",
    "ReplayResult",
    "WalSlot",
    "WalStats",
    "WriteAheadLog",
    "is_environment_dir",
    "open_any_environment",
    "open_environment",
    "open_sharded_environment",
    "replay",
]
