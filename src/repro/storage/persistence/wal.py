"""Page-granular write-ahead log with group-commit batching.

The log is the durability half of the redo protocol the file-backed disk
implements (see :mod:`repro.storage.persistence.file_disk`): the paged data
file always holds the image of the *last checkpoint*, and every page written
since then lives in the WAL.  A batch of page writes becomes durable in one
group commit — the buffered ``WRITE`` records are appended followed by a
single ``COMMIT`` record carrying the catalog blob (store roots, free-page
bitmap, application state) that describes the environment at that batch
boundary.  Recovery replays the longest valid committed prefix and discards
everything after it, so a crash mid-batch loses exactly the uncommitted tail
and nothing else.

Record framing (all integers little-endian):

``WRITE``
    ``b"W" | page_id:u64 | length:u32 | payload | crc32:u32``
``COMMIT``
    ``b"C" | batch_id:u64 | length:u32 | catalog | crc32:u32``

The CRC covers the record type, header fields and payload, so a torn append
(power loss mid-write) is detected and the scan stops at the last intact
record.  Payload bytes of ``WRITE`` records are addressable by file offset,
which lets the disk keep only ``(offset, length)`` references to spilled page
images in memory — the WAL file doubles as the overflow store for pages
written since the last checkpoint.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import DiskFullError, StorageError, TransientIOError
from repro.obs.trace import span

_WRITE = b"W"
_COMMIT = b"C"
_WRITE_HEADER = struct.Struct("<cQI")   # type, page_id, payload length
_COMMIT_HEADER = struct.Struct("<cQI")  # type, batch_id, catalog length
_CRC = struct.Struct("<I")


@dataclass
class WalStats:
    """Counters for write-ahead-log activity.

    These are *durability* costs, kept separate from :class:`DiskStats`: the
    simulated I/O model charges page reads/writes identically for the memory
    and file backends, and the WAL tax is reported on the side so the
    fingerprint of a workload never depends on the backend.
    """

    records_appended: int = 0
    batches_committed: int = 0
    bytes_appended: int = 0
    truncations: int = 0


@dataclass(frozen=True)
class WalSlot:
    """Reference to a page image stored in the WAL file (spilled payload)."""

    offset: int
    length: int


@dataclass
class ReplayResult:
    """Outcome of scanning a WAL file.

    ``pages`` maps page id -> :class:`WalSlot` of its latest *committed*
    image; ``catalog`` is the blob of the last valid ``COMMIT`` record
    (``None`` when no batch ever committed); ``valid_bytes`` is the offset of
    the end of the committed prefix — everything past it is an uncommitted or
    torn tail that recovery truncates away.
    """

    pages: dict[int, WalSlot] = field(default_factory=dict)
    catalog: bytes | None = None
    batch_id: int = 0
    valid_bytes: int = 0


class WriteAheadLog:
    """Append-only redo log over one file, with group commit and replay.

    Parameters
    ----------
    path:
        Log file path; created (empty) when missing.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.stats = WalStats()
        self._file = open(path, "a+b")
        self._file.seek(0, os.SEEK_END)
        #: Optional fault injector shared with the owning disk (see
        #: :mod:`repro.storage.faults`).  ``None`` keeps appends/commits on
        #: the plain fast path.
        self.fault_injector = None

    # -- fault plumbing -------------------------------------------------------

    def _fault_frame(self, op: str, frame: bytes) -> None:
        """Roll the injector before writing a record frame.

        ``transient`` raises before any byte lands; ``torn`` writes a strict
        prefix of the frame and then raises (what power loss mid-``write(2)``
        leaves behind — the caller's retry must roll the file back first);
        ``enospc`` escalates as a hard :class:`~repro.errors.DiskFullError`.
        """
        injector = self.fault_injector
        kind = injector.roll(op)
        if kind is None:
            return
        if kind == "enospc":
            raise injector.tag(DiskFullError(f"injected ENOSPC on WAL {op}"))
        if kind == "torn":
            self._file.write(frame[: max(1, len(frame) // 2)])
            self._file.flush()
            raise TransientIOError(f"injected torn WAL {op}")
        raise TransientIOError(f"injected transient WAL {op} failure")

    # -- appending -----------------------------------------------------------

    def append_write(self, page_id: int, payload: bytes) -> WalSlot:
        """Append one page image (uncommitted until :meth:`commit`).

        Returns the :class:`WalSlot` addressing the payload bytes inside the
        log file, so callers can drop the in-memory copy and read it back on
        demand.  The record is buffered by the OS; durability comes from the
        fsync in :meth:`commit`.
        """
        header = _WRITE_HEADER.pack(_WRITE, page_id, len(payload))
        crc = zlib.crc32(header)
        crc = zlib.crc32(payload, crc)
        start = self._file.tell()
        if self.fault_injector is not None:
            self._fault_frame("wal_append", header + payload + _CRC.pack(crc))
        self._file.write(header)
        self._file.write(payload)
        self._file.write(_CRC.pack(crc))
        self.stats.records_appended += 1
        self.stats.bytes_appended += _WRITE_HEADER.size + len(payload) + _CRC.size
        return WalSlot(offset=start + _WRITE_HEADER.size, length=len(payload))

    def commit(self, batch_id: int, catalog: bytes) -> None:
        """Group-commit everything appended so far plus the catalog blob.

        Appends the ``COMMIT`` record and fsyncs the file: this is the single
        durability point of a batch — before it, a crash loses the whole
        batch; after it, recovery replays the batch in full.  An injected
        ``fsync`` fault fires *after* the record reached the OS cache
        (power-loss semantics: the record may or may not be durable), so the
        caller must roll the log back to the pre-commit offset before
        retrying.
        """
        with span("wal.commit", batch=batch_id):
            header = _COMMIT_HEADER.pack(_COMMIT, batch_id, len(catalog))
            crc = zlib.crc32(header)
            crc = zlib.crc32(catalog, crc)
            injector = self.fault_injector
            if injector is not None:
                self._fault_frame("wal_commit", header + catalog + _CRC.pack(crc))
            self._file.write(header)
            self._file.write(catalog)
            self._file.write(_CRC.pack(crc))
            self._file.flush()
            if injector is not None and injector.roll("wal_fsync") == "fsync":
                raise TransientIOError(
                    "injected fsync failure on WAL commit (power-loss window)"
                )
            os.fsync(self._file.fileno())
            self.stats.records_appended += 1
            self.stats.batches_committed += 1
            self.stats.bytes_appended += (
                _COMMIT_HEADER.size + len(catalog) + _CRC.size
            )

    def read_slot(self, slot: WalSlot) -> bytes:
        """Read a spilled page image back from the log file."""
        self._file.flush()
        position = self._file.tell()
        self._file.seek(slot.offset)
        payload = self._file.read(slot.length)
        self._file.seek(position)
        if len(payload) != slot.length:
            raise StorageError(
                f"WAL {self.path}: slot at {slot.offset} truncated "
                f"({len(payload)} of {slot.length} bytes)"
            )
        return payload

    # -- lifecycle -----------------------------------------------------------

    def truncate(self, size: int = 0) -> None:
        """Cut the log back to ``size`` bytes (checkpoint / torn-tail cleanup).

        Deliberately free of injection sites: truncation is the *rollback*
        half of every retry/abort path, and injecting faults into cleanup
        would make failure handling itself unreliable (see the failure-model
        notes in ARCHITECTURE.md).
        """
        self._file.flush()
        self._file.truncate(size)
        self._file.seek(size)
        os.fsync(self._file.fileno())
        self.stats.truncations += 1

    def size_bytes(self) -> int:
        """Current size of the log file in bytes."""
        self._file.flush()
        return self._file.tell()

    def close(self) -> None:
        """Release the file handle (idempotent)."""
        if not self._file.closed:
            self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed


def replay(path: str, max_batch: "int | None" = None) -> ReplayResult:
    """Scan a WAL file and return its longest valid committed prefix.

    The scan walks records sequentially, verifying each CRC; ``WRITE``
    records accumulate into a pending batch that is promoted into the result
    only when its ``COMMIT`` record is reached intact.  A truncated or
    corrupt record ends the scan — everything from the last valid ``COMMIT``
    onwards is an uncommitted tail the caller should truncate.

    ``max_batch`` caps the prefix at a batch id: commits beyond it are
    treated as tail and discarded.  Sharded recovery uses this to roll a
    shard that committed *inside* a torn group-commit fan-out back to the
    commit point (batch ids in one log are strictly increasing, so the cap
    is a clean prefix cut).
    """
    result = ReplayResult()
    if not os.path.exists(path):
        return result
    pending: dict[int, WalSlot] = {}
    with open(path, "rb") as handle:
        while True:
            start = handle.tell()
            header = handle.read(_WRITE_HEADER.size)
            if len(header) < _WRITE_HEADER.size:
                break
            kind = header[:1]
            if kind == _WRITE:
                _, page_id, length = _WRITE_HEADER.unpack(header)
                payload = handle.read(length)
                crc_raw = handle.read(_CRC.size)
                if len(payload) < length or len(crc_raw) < _CRC.size:
                    break
                crc = zlib.crc32(header)
                crc = zlib.crc32(payload, crc)
                if _CRC.unpack(crc_raw)[0] != crc:
                    break
                pending[page_id] = WalSlot(
                    offset=start + _WRITE_HEADER.size, length=length
                )
            elif kind == _COMMIT:
                _, batch_id, length = _COMMIT_HEADER.unpack(header)
                if max_batch is not None and batch_id > max_batch:
                    break
                catalog = handle.read(length)
                crc_raw = handle.read(_CRC.size)
                if len(catalog) < length or len(crc_raw) < _CRC.size:
                    break
                crc = zlib.crc32(header)
                crc = zlib.crc32(catalog, crc)
                if _CRC.unpack(crc_raw)[0] != crc:
                    break
                result.pages.update(pending)
                pending.clear()
                result.catalog = catalog
                result.batch_id = batch_id
                result.valid_bytes = handle.tell()
            else:
                break
    return result
