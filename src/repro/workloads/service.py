"""Closed-loop concurrent service workload with a latency profile.

:class:`~repro.workloads.multiclient.MultiClientDriver` replays mixed
query/update traffic *single-threadedly* (round-robin), which is what the
determinism harnesses need.  :class:`ServiceLoadDriver` replays the **same
per-client schedules** the way a service actually runs them: one thread per
client, closed-loop (each client issues its next operation as soon as the
previous one returns), against an index whose concurrent execution subsystem
(``SVRTextIndex(shards=N, threads=M)``) fans queries out across shard
executors and combines update windows that queue behind the writer lock.

Besides aggregate throughput the driver records what a service cares about —
the *latency profile*: per-operation wall times with p50/p95/p99 summaries
for queries and update windows, exported into ``metrics.extra`` by
:meth:`ServiceLoadResult.record_into`.  An optional background checkpointer
exercises durability under load: on a file-backed index it group-commits and
folds the WAL on a wall-clock cadence while the clients keep hammering.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

#: Interpreter preemption quantum during a service replay.  Closed-loop
#: clients yield voluntarily at every lock/gather point, so a coarse quantum
#: just stops the interpreter from preempting a client mid-operation (which
#: costs cache locality and lengthens tail latency) without hurting fairness.
_SERVICE_SWITCH_INTERVAL_S = 0.02

from repro.errors import ObservabilityError, WorkloadError
from repro.obs.histogram import percentile as _obs_percentile
from repro.storage.sharding import ShardLoad, shard_load
from repro.workloads.multiclient import MultiClientConfig, schedule_client_ops
from repro.workloads.queries import KeywordQuery
from repro.workloads.updates import ScoreUpdate, resolve_batch


def percentile(values: "Sequence[float]", fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]; 0.0 for no samples).

    The one implementation lives in :mod:`repro.obs.histogram`; this wrapper
    keeps the workload-facing error contract (:class:`WorkloadError`).
    """
    try:
        return _obs_percentile(values, fraction)
    except ObservabilityError as exc:
        raise WorkloadError(str(exc)) from None


@dataclass(frozen=True)
class ServiceLoadConfig:
    """Parameters of the closed-loop concurrent replay."""

    num_clients: int = 4
    query_fraction: float = 0.5   # probability a client's next op is a query
    batch_window: int = 32        # score updates applied per update operation
    seed: int = 31
    #: Background checkpoint cadence in seconds (None = no checkpointer).
    checkpoint_interval_s: "float | None" = None

    def __post_init__(self) -> None:
        if self.checkpoint_interval_s is not None and self.checkpoint_interval_s <= 0:
            raise WorkloadError("checkpoint_interval_s must be positive")

    def scheduling(self) -> MultiClientConfig:
        """The deterministic per-client scheduling shared with MultiClientDriver."""
        return MultiClientConfig(
            num_clients=self.num_clients,
            query_fraction=self.query_fraction,
            batch_window=self.batch_window,
            seed=self.seed,
        )


@dataclass
class ServiceClientStats:
    """One concurrent client's operation counts."""

    client_id: int
    queries: int = 0
    update_windows: int = 0
    updates: int = 0


@dataclass
class ServiceLoadResult:
    """Latency-profiled outcome of one concurrent service replay."""

    clients: list[ServiceClientStats] = field(default_factory=list)
    queries_run: int = 0
    updates_applied: int = 0
    update_windows: int = 0
    wall_seconds: float = 0.0
    query_latencies_ms: list[float] = field(default_factory=list)
    window_latencies_ms: list[float] = field(default_factory=list)
    checkpoints: int = 0
    combined_windows: int = 0
    pages_read: int = 0
    pages_written: int = 0
    pool_hits: int = 0
    shard_load: "ShardLoad | None" = None

    @property
    def operations(self) -> int:
        """Client operations completed (queries + update windows)."""
        return self.queries_run + self.update_windows

    @property
    def throughput_ops_s(self) -> float:
        """Queries + individual updates completed per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return (self.queries_run + self.updates_applied) / self.wall_seconds

    def query_latency_ms(self, fraction: float) -> float:
        return percentile(self.query_latencies_ms, fraction)

    def window_latency_ms(self, fraction: float) -> float:
        return percentile(self.window_latencies_ms, fraction)

    def record_into(self, metrics) -> None:
        """Export the latency profile into ``metrics.extra``.

        ``metrics`` is a :class:`~repro.bench.metrics.OperationMetrics`; the
        keys follow the service-dashboard convention (milliseconds, and an
        aggregate ops/s figure covering queries plus individual updates).
        """
        metrics.extra["clients"] = float(len(self.clients))
        metrics.extra["throughput_ops_s"] = round(self.throughput_ops_s, 1)
        metrics.extra["p50_query_ms"] = round(self.query_latency_ms(0.50), 4)
        metrics.extra["p95_query_ms"] = round(self.query_latency_ms(0.95), 4)
        metrics.extra["p99_query_ms"] = round(self.query_latency_ms(0.99), 4)
        metrics.extra["p999_query_ms"] = round(self.query_latency_ms(0.999), 4)
        metrics.extra["max_query_ms"] = round(
            max(self.query_latencies_ms, default=0.0), 4)
        metrics.extra["p50_window_ms"] = round(self.window_latency_ms(0.50), 4)
        metrics.extra["p95_window_ms"] = round(self.window_latency_ms(0.95), 4)
        metrics.extra["p99_window_ms"] = round(self.window_latency_ms(0.99), 4)
        metrics.extra["p999_window_ms"] = round(self.window_latency_ms(0.999), 4)
        metrics.extra["max_window_ms"] = round(
            max(self.window_latencies_ms, default=0.0), 4)
        metrics.extra["checkpoints"] = float(self.checkpoints)
        metrics.extra["combined_windows"] = float(self.combined_windows)
        if self.shard_load is not None:
            metrics.extra["shards"] = float(self.shard_load.shard_count)
            metrics.extra["shard_skew"] = round(self.shard_load.skew, 4)

    def as_row(self) -> dict[str, float | int]:
        """Flat representation for experiment tables."""
        return {
            "clients": len(self.clients),
            "queries": self.queries_run,
            "updates": self.updates_applied,
            "wall_s": round(self.wall_seconds, 3),
            "ops_per_s": round(self.throughput_ops_s, 1),
            "p50_query_ms": round(self.query_latency_ms(0.50), 3),
            "p95_query_ms": round(self.query_latency_ms(0.95), 3),
            "p99_query_ms": round(self.query_latency_ms(0.99), 3),
            "combined_windows": self.combined_windows,
            "checkpoints": self.checkpoints,
        }


class _Checkpointer(threading.Thread):
    """Background thread checkpointing the index on a wall-clock cadence."""

    def __init__(self, index, interval_s: float) -> None:
        super().__init__(name="repro-service-checkpointer", daemon=True)
        self._index = index
        self._interval = interval_s
        self._halt = threading.Event()
        self.checkpoints = 0
        self.error: "BaseException | None" = None

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            try:
                self._index.checkpoint()
                self.checkpoints += 1
            except BaseException as exc:
                self.error = exc
                return

    def finish(self) -> None:
        self._halt.set()
        self.join()


class ServiceLoadDriver:
    """Replays per-client schedules from concurrent closed-loop client threads.

    The schedules are exactly :func:`~repro.workloads.multiclient.schedule_client_ops`
    of the equivalent :class:`MultiClientConfig`, so a serial round-robin
    replay and a concurrent replay perform the same logical operations —
    only the interleaving (and hence wall-clock) differs.
    """

    def __init__(self, config: ServiceLoadConfig,
                 queries: Sequence[KeywordQuery],
                 updates: Sequence[ScoreUpdate]) -> None:
        self.config = config
        scheduling = config.scheduling()
        self._client_ops = [
            schedule_client_ops(scheduling, client_id,
                                list(queries[client_id::config.num_clients]),
                                list(updates[client_id::config.num_clients]))
            for client_id in range(config.num_clients)
        ]

    def client_schedules(self) -> list[list]:
        """The per-client operation sequences (inspection and tests)."""
        return [list(ops) for ops in self._client_ops]

    def _run_client(self, index, client_id: int, stats: ServiceClientStats,
                    result: ServiceLoadResult, start_barrier: threading.Barrier,
                    record_lock: threading.Lock,
                    errors: list) -> None:
        try:
            start_barrier.wait()
            for kind, payload in self._client_ops[client_id]:
                if kind == "query":
                    query: KeywordQuery = payload  # type: ignore[assignment]
                    started = time.perf_counter()
                    index.search(query.keywords, k=query.k,
                                 conjunctive=query.conjunctive)
                    elapsed_ms = (time.perf_counter() - started) * 1000.0
                    with record_lock:
                        result.query_latencies_ms.append(elapsed_ms)
                        result.queries_run += 1
                    stats.queries += 1
                else:
                    window: list[ScoreUpdate] = payload  # type: ignore[assignment]
                    started = time.perf_counter()
                    touched = {update.doc_id for update in window}
                    current = index.current_scores(touched)
                    resolved = resolve_batch(window, current)
                    applied = index.apply_score_updates(resolved) if resolved else 0
                    elapsed_ms = (time.perf_counter() - started) * 1000.0
                    with record_lock:
                        result.window_latencies_ms.append(elapsed_ms)
                        result.update_windows += 1
                        result.updates_applied += applied
                    stats.update_windows += 1
                    stats.updates += applied
        except BaseException as exc:
            errors.append((client_id, exc))
            try:
                start_barrier.abort()
            except BaseException:
                pass

    def run(self, index) -> ServiceLoadResult:
        """Run every client thread to completion against ``index``.

        ``index`` is an ``SVRTextIndex``; with ``threads > 1`` its router
        fans queries out and combines queued update windows, which is the
        configuration this driver exists to measure.  Raises the first client
        (or checkpointer) error after all threads have stopped.
        """
        result = ServiceLoadResult(
            clients=[ServiceClientStats(client_id=i)
                     for i in range(self.config.num_clients)]
        )
        record_lock = threading.Lock()
        errors: list = []
        combined_before = getattr(index.router, "combined_windows", 0)
        env_before = index.env.snapshot()
        load_before = shard_load(index.env)
        barrier = threading.Barrier(self.config.num_clients + 1)
        workers = [
            threading.Thread(
                target=self._run_client,
                args=(index, client_id, result.clients[client_id], result,
                      barrier, record_lock, errors),
                name=f"repro-service-client-{client_id}",
                daemon=True,
            )
            for client_id in range(self.config.num_clients)
        ]
        checkpointer: "_Checkpointer | None" = None
        if self.config.checkpoint_interval_s is not None:
            checkpointer = _Checkpointer(index, self.config.checkpoint_interval_s)
        previous_switch_interval = sys.getswitchinterval()
        sys.setswitchinterval(_SERVICE_SWITCH_INTERVAL_S)
        try:
            for worker in workers:
                worker.start()
            try:
                barrier.wait()
                started = time.perf_counter()
            except threading.BrokenBarrierError:
                started = time.perf_counter()
            if checkpointer is not None:
                checkpointer.start()
            for worker in workers:
                worker.join()
            result.wall_seconds = time.perf_counter() - started
            if checkpointer is not None:
                checkpointer.finish()
                result.checkpoints = checkpointer.checkpoints
                if checkpointer.error is not None:
                    errors.append(("checkpointer", checkpointer.error))
        finally:
            sys.setswitchinterval(previous_switch_interval)
        # Close out the storm's final (partial) time-series window and refresh
        # SLO burn status + storage gauges, so a scraper (or the endpoint
        # smoke test) reads a profile covering the whole replay rather than
        # whatever the last hot-path tick happened to see.
        obs_roll = getattr(index.router, "_obs_roll", None)
        if obs_roll is not None:
            obs_roll()
        delta = index.env.delta_since(env_before)
        result.pages_read = delta.page_reads
        result.pages_written = delta.page_writes
        result.pool_hits = delta.pool_hits
        result.shard_load = shard_load(index.env).diff(load_before)
        result.combined_windows = (
            getattr(index.router, "combined_windows", 0) - combined_before
        )
        if errors:
            source, error = errors[0]
            raise RuntimeError(
                f"service client {source!r} failed: {error!r}"
            ) from error
        return result
