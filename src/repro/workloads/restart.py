"""Restart / crash-storm workloads for the durable storage engine.

The memory-backed engine could never model the scenario every production
deployment lives with: the process dies mid-update-storm and comes back.
This driver exercises exactly that against a file-backed index:

1. build a persistent index over a corpus and checkpoint it;
2. apply a score-update storm in batches, group-committing at every batch
   boundary (optionally checkpointing every N batches, optionally churning
   document inserts/deletes between batches);
3. *kill* the process mid-batch — a configurable number of updates past a
   chosen commit boundary are applied and then the file handles are dropped
   without a commit, exactly what power loss leaves behind;
4. recover with :meth:`SVRTextIndex.open` and verify the contents and top-k
   answers equal a memory-backed twin that applied **only the committed
   prefix** — not one update more, not one less.

The twin comparison is the whole point: recovery correctness is defined
against the paper's own equivalence standard (same contents, same top-k for
every method), not against a weaker "it reopens without crashing" bar.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.text_index import SVRTextIndex
from repro.errors import WorkloadError
from repro.workloads.updates import (
    ScoreUpdate,
    UpdateWorkload,
    UpdateWorkloadConfig,
    resolve_batch,
    window_updates,
)


@dataclass(frozen=True)
class RestartStormConfig:
    """Parameters of one crash-storm run.

    ``crash_after_batch`` names the last *committed* batch: the storm applies
    that many full batches (commit after each), then ``partial_tail`` further
    updates without a commit, then crashes.  ``None`` runs every batch and
    closes cleanly (the restart-without-crash case).
    """

    num_batches: int = 6
    batch_size: int = 24
    checkpoint_every: int = 3
    crash_after_batch: "int | None" = None
    partial_tail: int = 7
    doc_churn: bool = False
    verify_queries: int = 6
    k: int = 5
    seed: int = 11
    update_config: UpdateWorkloadConfig | None = None

    def __post_init__(self) -> None:
        if self.num_batches < 1:
            raise WorkloadError("num_batches must be at least 1")
        if self.batch_size < 1:
            raise WorkloadError("batch_size must be at least 1")
        if (self.crash_after_batch is not None
                and not 0 <= self.crash_after_batch <= self.num_batches):
            raise WorkloadError(
                f"crash_after_batch must be in [0, {self.num_batches}], "
                f"got {self.crash_after_batch}"
            )


@dataclass
class RestartStormResult:
    """Outcome of one crash-storm run (see :func:`run_crash_storm`)."""

    method: str
    crash_after_batch: "int | None"
    batches_committed: int
    updates_committed: int
    updates_lost: int
    recovered_doc_count: int
    contents_match: bool
    topk_match: bool
    mismatches: list[str] = field(default_factory=list)

    @property
    def recovered_exactly(self) -> bool:
        """Whether recovery landed exactly on the committed prefix."""
        return self.contents_match and self.topk_match


def _corpus_triples(corpus: Iterable[Any]) -> list[tuple[int, list[str], float]]:
    """Normalise a corpus to ``(doc_id, terms, score)`` triples.

    Accepts either plain triples or objects with ``doc_id``/``terms``/``score``
    attributes (e.g. :class:`repro.workloads.synthetic.SyntheticDocument`).
    """
    triples = []
    for item in corpus:
        if isinstance(item, tuple):
            doc_id, terms, score = item
        else:
            doc_id, terms, score = item.doc_id, item.terms, item.score
        triples.append((int(doc_id), list(terms), float(score)))
    if not triples:
        raise WorkloadError("the restart workload needs a non-empty corpus")
    return triples


def build_persistent_index(path: str, method: str,
                           corpus: Iterable[Any],
                           cache_pages: int = 1024, page_size: int = 512,
                           shards: int = 1,
                           **method_options: Any) -> SVRTextIndex:
    """Build, finalize and checkpoint a durable index over a corpus."""
    index = SVRTextIndex(
        method=method, path=path, cache_pages=cache_pages,
        page_size=page_size, shards=shards, **method_options
    )
    for doc_id, terms, score in _corpus_triples(corpus):
        index.add_document_terms(doc_id, terms, score)
    index.finalize()
    index.checkpoint()
    return index


def _verification_queries(triples: Sequence[tuple[int, list[str], float]],
                          count: int, seed: int) -> list[list[str]]:
    """Deterministic single- and two-term queries over the corpus vocabulary."""
    frequency: dict[str, int] = {}
    for _doc_id, terms, _score in triples:
        for term in set(terms):
            frequency[term] = frequency.get(term, 0) + 1
    ranked = sorted(frequency, key=lambda term: (-frequency[term], term))
    if not ranked:
        return []
    rng = random.Random(seed)
    queries: list[list[str]] = []
    pool = ranked[: max(2 * count, 4)]
    for position in range(count):
        if position % 2 == 0 or len(pool) < 2:
            queries.append([rng.choice(pool)])
        else:
            queries.append(rng.sample(pool, 2))
    return queries


def _apply_storm(index: SVRTextIndex, batches: Sequence[list[ScoreUpdate]],
                 upto: int, config: RestartStormConfig,
                 commit: bool) -> tuple[int, int]:
    """Apply batches ``[0, upto)`` (committing after each when ``commit``).

    Returns ``(batches_applied, updates_applied)``.  Document churn inserts a
    fresh document before every even batch and deletes it before the next odd
    one, exercising the insert/delete recovery paths alongside score updates.
    """
    applied = 0
    churn_base = 10_000_000
    for position in range(upto):
        if config.doc_churn:
            doc_id = churn_base + position // 2
            if position % 2 == 0:
                index.insert_document_terms(
                    doc_id, ["churn", f"churn{position:03d}"], 50.0 * (position + 1)
                )
            else:
                index.delete_document(doc_id)
        batch = batches[position]
        touched = {update.doc_id for update in batch}
        current = {
            doc_id: score
            for doc_id in touched
            if (score := index.current_score(doc_id)) is not None
        }
        resolved = resolve_batch(batch, current)
        if resolved:
            applied += index.apply_score_updates(resolved)
        if commit:
            if (config.checkpoint_every
                    and (position + 1) % config.checkpoint_every == 0):
                index.checkpoint()
            else:
                index.commit()
    return upto, applied


def run_crash_storm(path: str, method: str, corpus: Iterable[Any],
                    config: RestartStormConfig | None = None,
                    cache_pages: int = 1024, page_size: int = 512,
                    shards: int = 1,
                    **method_options: Any) -> RestartStormResult:
    """One full crash-storm cycle: build, storm, kill, recover, verify.

    The recovered index is compared against a memory-backed twin that applied
    exactly the committed batches: every document's current score must match,
    and every verification query's ranked top-k must match, for the run to
    count as recovered.
    """
    config = config if config is not None else RestartStormConfig()
    triples = _corpus_triples(corpus)
    initial_scores = {doc_id: score for doc_id, _terms, score in triples}
    update_config = config.update_config or UpdateWorkloadConfig(
        num_updates=config.num_batches * config.batch_size + config.partial_tail,
        seed=config.seed,
    )
    stream = UpdateWorkload(update_config, initial_scores).generate_list()
    batches = list(window_updates(stream, config.batch_size))[: config.num_batches]
    tail = stream[config.num_batches * config.batch_size:]

    crash_at = config.crash_after_batch
    committed_upto = crash_at if crash_at is not None else len(batches)

    # -- the doomed run -----------------------------------------------------
    index = build_persistent_index(
        path, method, triples, cache_pages=cache_pages,
        page_size=page_size, shards=shards, **method_options
    )
    _batches, committed_updates = _apply_storm(
        index, batches, committed_upto, config, commit=True
    )
    lost = 0
    if crash_at is not None:
        # The batch that never commits: a partial window applied mid-flight.
        partial = (batches[crash_at] if crash_at < len(batches) else tail)
        partial = partial[: config.partial_tail]
        for update in partial:
            current = index.current_score(update.doc_id)
            if current is None:
                continue
            index.update_score(update.doc_id, update.apply_to(current))
            lost += 1
        index.crash()
    else:
        index.close()

    # -- recovery + twin verification --------------------------------------
    recovered = SVRTextIndex.open(path)
    twin = SVRTextIndex(
        method=method, cache_pages=cache_pages, page_size=page_size,
        shards=shards, **method_options
    )
    for doc_id, terms, score in triples:
        twin.add_document_terms(doc_id, terms, score)
    twin.finalize()
    _apply_storm(twin, batches, committed_upto, config, commit=False)

    mismatches: list[str] = []
    doc_ids = sorted(set(twin.documents.doc_ids()) | set(recovered.documents.doc_ids()))
    for doc_id in doc_ids:
        expected = twin.current_score(doc_id)
        actual = recovered.current_score(doc_id)
        if expected != actual:
            mismatches.append(f"doc {doc_id}: expected {expected}, got {actual}")
    contents_match = not mismatches

    topk_match = True
    for keywords in _verification_queries(triples, config.verify_queries, config.seed):
        expected_response = twin.search(keywords, k=config.k)
        actual_response = recovered.search(keywords, k=config.k)
        expected_hits = [(r.doc_id, r.score) for r in expected_response.results]
        actual_hits = [(r.doc_id, r.score) for r in actual_response.results]
        if expected_hits != actual_hits:
            topk_match = False
            mismatches.append(
                f"query {keywords}: expected {expected_hits}, got {actual_hits}"
            )

    result = RestartStormResult(
        method=method,
        crash_after_batch=crash_at,
        batches_committed=committed_upto,
        updates_committed=committed_updates,
        updates_lost=lost,
        recovered_doc_count=recovered.document_count(),
        contents_match=contents_match,
        topk_match=topk_match,
        mismatches=mismatches,
    )
    recovered.close()
    twin.close()
    return result


def sweep_crash_points(base_path: str, method: str, corpus: Iterable[Any],
                       config: RestartStormConfig | None = None,
                       boundaries: "Sequence[int] | None" = None,
                       **kwargs: Any) -> list[RestartStormResult]:
    """Run a crash storm at every batch boundary (the recovery sweep).

    ``boundaries`` defaults to every commit boundary ``0..num_batches``; each
    run uses its own directory under ``base_path``.
    """
    import dataclasses
    import os

    config = config if config is not None else RestartStormConfig()
    if boundaries is None:
        boundaries = range(config.num_batches + 1)
    results = []
    for boundary in boundaries:
        run_config = dataclasses.replace(config, crash_after_batch=boundary)
        results.append(
            run_crash_storm(
                os.path.join(base_path, f"crash-{boundary:03d}"),
                method, corpus, config=run_config, **kwargs,
            )
        )
    return results
