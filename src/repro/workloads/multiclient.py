"""Interleaved multi-client workload driver.

The paper measures queries and updates as separate streams; a production
deployment serves both at once, from many clients, against a term-partitioned
storage engine.  This module models that traffic single-threadedly but
faithfully: a query workload and an update workload are dealt across N
simulated clients, each client decides (deterministically, from its own seed)
whether its next operation is a top-k query or a window of score updates, and
the driver replays the clients round-robin — so queries from one client
interleave with update windows from another exactly as a fair scheduler would
interleave them.

Determinism is the point: the same configuration and input streams produce
the same operation order regardless of how many storage shards serve them,
which is what lets the shard-invariance tests assert that a sharded engine
returns byte-identical answers under mixed traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import random

from repro.errors import WorkloadError
from repro.storage.sharding import ShardLoad, shard_load
from repro.workloads.queries import KeywordQuery
from repro.workloads.updates import ScoreUpdate, resolve_batch


@dataclass(frozen=True)
class MultiClientConfig:
    """Parameters of the interleaved multi-client replay."""

    num_clients: int = 4
    query_fraction: float = 0.5   # probability a client's next op is a query
    batch_window: int = 32        # score updates applied per update operation
    seed: int = 31

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise WorkloadError("num_clients must be at least 1")
        if not 0.0 <= self.query_fraction <= 1.0:
            raise WorkloadError("query_fraction must be in [0, 1]")
        if self.batch_window < 1:
            raise WorkloadError("batch_window must be at least 1")


@dataclass
class ClientStats:
    """Operations one simulated client performed."""

    client_id: int
    queries: int = 0
    update_windows: int = 0
    updates: int = 0


@dataclass
class MultiClientResult:
    """Aggregate outcome of one multi-client replay."""

    clients: list[ClientStats] = field(default_factory=list)
    queries_run: int = 0
    updates_applied: int = 0
    update_windows: int = 0
    query_wall_ms: float = 0.0
    update_wall_ms: float = 0.0
    pages_read: int = 0
    pages_written: int = 0
    pool_hits: int = 0
    shard_load: ShardLoad | None = None

    @property
    def operations(self) -> int:
        """Total client operations (queries + update windows)."""
        return self.queries_run + self.update_windows

    @property
    def shard_skew(self) -> float:
        """Max/mean per-shard access skew over the whole replay (1.0 = balanced)."""
        return self.shard_load.skew if self.shard_load is not None else 1.0

    def as_row(self) -> dict[str, float | int]:
        """Flat representation for experiment tables."""
        return {
            "clients": len(self.clients),
            "queries": self.queries_run,
            "updates": self.updates_applied,
            "query_wall_ms": round(self.query_wall_ms, 2),
            "update_wall_ms": round(self.update_wall_ms, 2),
            "pages_read": self.pages_read,
            "shards": self.shard_load.shard_count if self.shard_load else 1,
            "shard_skew": round(self.shard_skew, 4),
        }


#: One client operation: ("query", KeywordQuery) or ("updates", [ScoreUpdate, ...]).
_Op = tuple[str, object]


def schedule_client_ops(config: MultiClientConfig, client_id: int,
                        queries: "list[KeywordQuery]",
                        updates: "list[ScoreUpdate]") -> "list[_Op]":
    """One client's deterministic operation sequence.

    The client's dealt query/update streams are shuffled into a mixed
    sequence by a per-client RNG seeded from ``(config.seed, client_id)``, so
    the schedule depends only on the configuration — not on shard counts,
    thread counts or real time.  Shared by the round-robin
    :class:`MultiClientDriver` and the closed-loop concurrent
    :class:`~repro.workloads.service.ServiceLoadDriver`, which replay the
    *same* per-client schedules under different execution models.
    """
    rng = random.Random(f"{config.seed}:{client_id}")
    window = config.batch_window
    ops: "list[_Op]" = []
    query_pos = update_pos = 0
    while query_pos < len(queries) or update_pos < len(updates):
        want_query = rng.random() < config.query_fraction
        if query_pos >= len(queries):
            want_query = False
        elif update_pos >= len(updates):
            want_query = True
        if want_query:
            ops.append(("query", queries[query_pos]))
            query_pos += 1
        else:
            ops.append(("updates", updates[update_pos:update_pos + window]))
            update_pos += window
    return ops


class MultiClientDriver:
    """Replays mixed query/update traffic from N clients against one index.

    Parameters
    ----------
    config:
        Client count, query/update mix and update window size.
    queries:
        The shared query workload; dealt round-robin across clients.
    updates:
        The shared score-update stream; dealt round-robin across clients and
        applied through the index's batched path one window at a time.
    """

    def __init__(self, config: MultiClientConfig,
                 queries: Sequence[KeywordQuery],
                 updates: Sequence[ScoreUpdate]) -> None:
        self.config = config
        self._client_ops = [
            self._schedule_client(client_id,
                                  list(queries[client_id::config.num_clients]),
                                  list(updates[client_id::config.num_clients]))
            for client_id in range(config.num_clients)
        ]

    def _schedule_client(self, client_id: int, queries: list[KeywordQuery],
                         updates: list[ScoreUpdate]) -> list[_Op]:
        """One client's deterministic operation sequence (its dealt streams,
        shuffled into a query/update mix by a per-client RNG)."""
        return schedule_client_ops(self.config, client_id, queries, updates)

    def client_schedules(self) -> list[list[_Op]]:
        """The per-client operation sequences (inspection and tests)."""
        return [list(ops) for ops in self._client_ops]

    def _interleaved(self) -> Iterator[tuple[int, _Op]]:
        """Round-robin interleaving of every client's next operation."""
        cursors = [0] * len(self._client_ops)
        remaining = sum(len(ops) for ops in self._client_ops)
        while remaining:
            for client_id, ops in enumerate(self._client_ops):
                position = cursors[client_id]
                if position >= len(ops):
                    continue
                cursors[client_id] += 1
                remaining -= 1
                yield client_id, ops[position]

    def run(self, index) -> MultiClientResult:
        """Replay the interleaved traffic against ``index`` (an ``SVRTextIndex``).

        Queries go through ``index.search``; update windows are resolved
        against the index's current scores and applied through
        ``index.apply_score_updates`` (the batched write path).  Returns
        aggregate wall/I-O metrics plus the per-shard load of the replay.
        """
        result = MultiClientResult(
            clients=[ClientStats(client_id=i) for i in range(self.config.num_clients)]
        )
        before = index.env.snapshot()
        load_before = shard_load(index.env)
        for client_id, (kind, payload) in self._interleaved():
            stats = result.clients[client_id]
            if kind == "query":
                query: KeywordQuery = payload  # type: ignore[assignment]
                start = time.perf_counter()
                index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
                result.query_wall_ms += (time.perf_counter() - start) * 1000.0
                stats.queries += 1
                result.queries_run += 1
            else:
                window: list[ScoreUpdate] = payload  # type: ignore[assignment]
                touched = {update.doc_id for update in window}
                current = {
                    doc_id: score
                    for doc_id in touched
                    if (score := index.current_score(doc_id)) is not None
                }
                resolved = resolve_batch(window, current)
                start = time.perf_counter()
                applied = index.apply_score_updates(resolved) if resolved else 0
                result.update_wall_ms += (time.perf_counter() - start) * 1000.0
                stats.update_windows += 1
                stats.updates += applied
                result.update_windows += 1
                result.updates_applied += applied
        delta = index.env.delta_since(before)
        result.pages_read = delta.page_reads
        result.pages_written = delta.page_writes
        result.pool_hits = delta.pool_hits
        result.shard_load = shard_load(index.env).diff(load_before)
        return result
