"""Score-update workloads (§5.1).

The paper's update workload has four knobs:

* documents with higher scores are updated more often (Zipf over score rank,
  matching the Internet Archive update logs);
* the **mean update step** controls the magnitude of a score change — a value
  of 100 means the score moves by a uniformly distributed amount between 0 and
  200, equally likely to increase or decrease;
* a **focus set** — a small fraction of documents, chosen independently of
  their score, that temporarily receives a share of the updates ("newly
  popular" documents such as a song entering the top-5);
* the **focus direction** — focus-set updates are strictly increasing by
  default (the flash-crowd case), but can be strictly decreasing or mixed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class ScoreUpdate:
    """One score update: the target document and the signed score delta."""

    doc_id: int
    delta: float

    def apply_to(self, current: float) -> float:
        """New (non-negative) score after applying the update to ``current``."""
        return max(0.0, current + self.delta)


@dataclass(frozen=True)
class UpdateWorkloadConfig:
    """Parameters of a score-update workload (paper defaults in bold in §5.1)."""

    num_updates: int = 10000             # paper default: 100,000
    mean_step: float = 100.0             # paper default: 100
    target_zipf: float = 0.75            # skew towards high-score documents
    focus_set_fraction: float = 0.01     # fraction of documents in the focus set
    focus_update_fraction: float = 0.2   # fraction of updates aimed at the focus set
    focus_direction: str = "increase"    # "increase" | "decrease" | "mixed"
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_updates < 0:
            raise WorkloadError("num_updates must be non-negative")
        if self.mean_step <= 0:
            raise WorkloadError("mean_step must be positive")
        if not 0.0 <= self.focus_set_fraction <= 1.0:
            raise WorkloadError("focus_set_fraction must be in [0, 1]")
        if not 0.0 <= self.focus_update_fraction <= 1.0:
            raise WorkloadError("focus_update_fraction must be in [0, 1]")
        if self.focus_direction not in ("increase", "decrease", "mixed"):
            raise WorkloadError(
                "focus_direction must be 'increase', 'decrease' or 'mixed', "
                f"got {self.focus_direction!r}"
            )


class UpdateWorkload:
    """Generates a deterministic stream of :class:`ScoreUpdate` events.

    Parameters
    ----------
    config:
        Workload parameters.
    initial_scores:
        Document id -> initial score; used to bias update targets towards
        high-score documents and to pick the focus set.
    """

    def __init__(self, config: UpdateWorkloadConfig,
                 initial_scores: Mapping[int, float]) -> None:
        if not initial_scores:
            raise WorkloadError("the update workload needs at least one document")
        self.config = config
        self._rng = random.Random(config.seed)
        # Documents ordered by decreasing initial score: rank 1 = highest score,
        # so a Zipf sampler over ranks updates popular documents most often.
        self._by_score = [
            doc_id
            for doc_id, _score in sorted(
                initial_scores.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        self._sampler = ZipfSampler(len(self._by_score), config.target_zipf, self._rng)
        focus_count = int(round(config.focus_set_fraction * len(self._by_score)))
        population = list(initial_scores)
        self._focus_set = (
            self._rng.sample(population, focus_count) if focus_count > 0 else []
        )
        self._focus_directions = {
            doc_id: self._direction_for(position)
            for position, doc_id in enumerate(self._focus_set)
        }

    def _direction_for(self, position: int) -> int:
        if self.config.focus_direction == "increase":
            return 1
        if self.config.focus_direction == "decrease":
            return -1
        return 1 if position % 2 == 0 else -1

    @property
    def focus_set(self) -> list[int]:
        """The documents in the focus set (possibly empty)."""
        return list(self._focus_set)

    def generate(self) -> Iterator[ScoreUpdate]:
        """Yield ``config.num_updates`` score updates."""
        for _ in range(self.config.num_updates):
            yield self._one_update()

    def generate_list(self) -> list[ScoreUpdate]:
        """Materialise the whole update stream."""
        return list(self.generate())

    def _one_update(self) -> ScoreUpdate:
        use_focus = (
            bool(self._focus_set)
            and self._rng.random() < self.config.focus_update_fraction
        )
        magnitude = self._rng.uniform(0.0, 2.0 * self.config.mean_step)
        if use_focus:
            doc_id = self._rng.choice(self._focus_set)
            sign = self._focus_directions[doc_id]
        else:
            rank = self._sampler.sample_rank()
            doc_id = self._by_score[rank - 1]
            sign = 1 if self._rng.random() < 0.5 else -1
        return ScoreUpdate(doc_id=doc_id, delta=sign * magnitude)


def apply_updates(updates: Iterator[ScoreUpdate] | list[ScoreUpdate],
                  scores: dict[int, float]) -> dict[int, float]:
    """Apply a stream of updates to a plain score dictionary (reference model).

    Tests use this to compare index behaviour against ground truth; the
    experiment harness applies the same updates through the index API instead.
    """
    for update in updates:
        scores[update.doc_id] = update.apply_to(scores[update.doc_id])
    return scores


def window_updates(updates: Iterable[ScoreUpdate],
                   window: int) -> Iterator[list[ScoreUpdate]]:
    """Group an update stream into consecutive windows of at most ``window``.

    The batched update pipeline applies one window at a time
    (:meth:`repro.core.indexes.base.InvertedIndex.apply_batch`); windowing
    bounds both the batching latency — an update is visible to queries as soon
    as its window is applied — and the per-batch memory footprint.
    """
    if window <= 0:
        raise WorkloadError(f"the batch window must be positive, got {window}")
    batch: list[ScoreUpdate] = []
    for update in updates:
        batch.append(update)
        if len(batch) >= window:
            yield batch
            batch = []
    if batch:
        yield batch


def resolve_batch(batch: Iterable[ScoreUpdate],
                  current_scores: Mapping[int, float]) -> list[tuple[int, float]]:
    """Turn one window of score *deltas* into absolute ``(doc_id, new_score)`` pairs.

    Deltas are applied in arrival order against ``current_scores`` (documents
    absent from it are skipped, matching how the experiment harness skips
    updates for unknown documents).  The clamp at zero happens per step, so a
    document driven below zero and back up resolves exactly as a sequential
    application would.  Every intermediate score is emitted — coalescing to
    the final score per document is the index's decision, not the workload's —
    so ``apply_batch`` sees the same update sequence a per-update loop would.
    """
    running: dict[int, float] = {}
    resolved: list[tuple[int, float]] = []
    for update in batch:
        current = running.get(update.doc_id)
        if current is None:
            current = current_scores.get(update.doc_id)
            if current is None:
                continue
        new_score = update.apply_to(current)
        running[update.doc_id] = new_score
        resolved.append((update.doc_id, new_score))
    return resolved
