"""Chaos storms: update/query traffic under injected storage faults.

The restart workload (:mod:`repro.workloads.restart`) kills the process at a
*chosen* instruction; real failures are messier — transient I/O errors,
failed fsyncs, torn appends, ENOSPC and bit-rot arrive mid-operation on
whatever the engine happened to be doing.  This driver replays a seeded
update storm against an index with a :class:`~repro.storage.faults.FaultPlan`
attached and holds the engine to the durability contract the whole time:

* every operation either **succeeds**, raises a **typed**
  :class:`~repro.errors.ReproError`, or **quarantines** the faulty shard —
  never a bare ``OSError`` or silent corruption;
* after any hard failure the index is crash-recovered, and its contents and
  top-k answers must equal a fault-free memory twin holding exactly the
  **committed prefix** of the storm — not one operation more or less;
* on the memory backend (no durable state to recover) the chaos profile only
  schedules faults the retry machinery absorbs, so the twin equivalence is
  exact at every boundary.

The twin is maintained incrementally: a storm cycle's operations are applied
to the fault-free twin only after the real index durably commits them, so
"the twin's state" and "the committed prefix" are the same object by
construction.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.text_index import SVRTextIndex
from repro.errors import ReproError, WorkloadError
from repro.storage.faults import FaultPlan
from repro.storage.sharding import shard_of_doc, shard_of_term
from repro.workloads.restart import _corpus_triples, _verification_queries
from repro.workloads.updates import (
    ScoreUpdate,
    UpdateWorkload,
    UpdateWorkloadConfig,
    resolve_batch,
    window_updates,
)


def fault_seed_from_environ(default: "int | None" = None) -> "int | None":
    """The chaos seed from ``REPRO_FAULT_SEED`` (``default`` when unset).

    The CI chaos leg sets this to replay the whole chaos suite under several
    deterministic fault schedules.
    """
    raw = os.environ.get("REPRO_FAULT_SEED", "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class ChaosStormConfig:
    """Parameters of one chaos-storm run.

    ``fault_seed`` seeds :meth:`FaultPlan.chaos` for the chosen ``backend``;
    ``rate``/``escalations`` are forwarded to it.  ``doc_churn`` interleaves
    document inserts/deletes with the score-update batches so the
    content-change paths face faults too.
    """

    num_batches: int = 8
    batch_size: int = 16
    checkpoint_every: int = 4
    doc_churn: bool = True
    verify_queries: int = 6
    k: int = 5
    seed: int = 11
    fault_seed: int = 0
    backend: str = "file"
    rate: float = 0.02
    escalations: int = 1
    update_config: "UpdateWorkloadConfig | None" = None

    def __post_init__(self) -> None:
        if self.num_batches < 1:
            raise WorkloadError("num_batches must be at least 1")
        if self.batch_size < 1:
            raise WorkloadError("batch_size must be at least 1")
        if self.backend not in ("memory", "file"):
            raise WorkloadError(
                f"backend must be 'memory' or 'file', got {self.backend!r}"
            )


@dataclass
class ChaosStormResult:
    """Outcome of one chaos-storm run (see :func:`run_chaos_storm`)."""

    method: str
    backend: str
    cycles_attempted: int = 0
    cycles_committed: int = 0
    recoveries: int = 0
    typed_errors: list[str] = field(default_factory=list)
    degraded_queries: int = 0
    quarantine_events: int = 0
    faults_injected: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    escalations: int = 0
    scrub_clean: bool = True
    contents_match: bool = True
    topk_match: bool = True
    unrecovered: bool = False
    mismatches: list[str] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        """The pass criterion: recovered state equals the committed prefix,
        data at rest scrubs clean, and every failure was typed."""
        return (self.contents_match and self.topk_match
                and self.scrub_clean and not self.unrecovered)


def _merge_fault_stats(result: ChaosStormResult, index: SVRTextIndex) -> None:
    stats = index.fault_stats()
    if stats is None:
        return
    for kind, count in stats.injected.items():
        result.faults_injected[kind] = result.faults_injected.get(kind, 0) + count
    result.retries += stats.retries
    result.escalations += stats.escalations


class _ChaosRun:
    """One storm's mutable machinery: the faulted index, its twin, the plan."""

    def __init__(self, path: "str | None", method: str,
                 triples: Sequence[tuple[int, list[str], float]],
                 config: ChaosStormConfig, cache_pages: int, page_size: int,
                 shards: int, method_options: dict) -> None:
        self.path = path
        self.method = method
        self.config = config
        self.cache_pages = cache_pages
        self.page_size = page_size
        self.shards = shards
        self.method_options = method_options
        self.plan = FaultPlan.chaos(
            config.fault_seed, backend=config.backend,
            rate=config.rate, escalations=config.escalations,
        )
        self.result = ChaosStormResult(method=method, backend=config.backend)
        self.triples = triples
        self.queries = _verification_queries(triples, config.verify_queries,
                                             config.seed)
        self.index = self._build(durable=config.backend == "file")
        self.twin = self._build(durable=False)
        self._fill(self.twin)
        self._fill(self.index)
        if self.index.durable:
            self.index.checkpoint()
        self.index.inject_faults(self.plan)

    def _build(self, durable: bool) -> SVRTextIndex:
        return SVRTextIndex(
            method=self.method, path=self.path if durable else None,
            cache_pages=self.cache_pages, page_size=self.page_size,
            shards=self.shards, **self.method_options,
        )

    def _fill(self, index: SVRTextIndex) -> None:
        for doc_id, terms, score in self.triples:
            index.add_document_terms(doc_id, terms, score)
        index.finalize()

    # -- failure handling ----------------------------------------------------

    def recover(self) -> bool:
        """Crash the faulted index and recover the committed prefix.

        Returns ``False`` on the memory backend, which has nothing to recover
        from — the caller must end the storm (``unrecovered``).
        """
        _merge_fault_stats(self.result, self.index)
        if not self.index.durable:
            return False
        self.result.recoveries += 1
        self.index.crash()
        self.index = SVRTextIndex.open(self.path)
        # Recovery itself runs fault-free; the storm continues faulted.
        self.index.inject_faults(self.plan)
        return True

    def run_cycle(self, position: int,
                  batch: "list[ScoreUpdate]") -> bool:
        """One storm cycle: churn + batch + commit, twin updated on success.

        Returns whether the storm can continue (``False`` = unrecoverable).
        """
        config = self.config
        self.result.cycles_attempted += 1
        replay: list[tuple[str, tuple]] = []
        try:
            if config.doc_churn:
                doc_id = 10_000_000 + position // 2
                if position % 2 == 0:
                    args = (doc_id, ["churn", f"churn{position:03d}"],
                            50.0 * (position + 1))
                    self.index.insert_document_terms(*args)
                    replay.append(("insert", args))
                elif self.twin.current_score(doc_id) is not None:
                    # Guard against the insert cycle having been rolled back:
                    # the twin holds the committed state, so "exists on the
                    # twin" is exactly "exists on the recovered index".
                    self.index.delete_document(doc_id)
                    replay.append(("delete", (doc_id,)))
            touched = {update.doc_id for update in batch}
            current = {
                doc_id: score
                for doc_id in touched
                if (score := self.twin.current_score(doc_id)) is not None
            }
            resolved = resolve_batch(batch, current)
            if resolved:
                self.index.apply_score_updates(resolved)
                replay.append(("updates", (resolved,)))
            if (config.checkpoint_every
                    and (position + 1) % config.checkpoint_every == 0):
                self.index.checkpoint()
            else:
                self.index.commit()
        except ReproError as exc:
            self.result.typed_errors.append(type(exc).__name__)
            if not self.recover():
                self.result.unrecovered = True
                return False
            return True
        # Durably committed: the cycle joins the committed prefix.
        self.result.cycles_committed += 1
        for kind, args in replay:
            if kind == "insert":
                self.twin.insert_document_terms(*args)
            elif kind == "delete":
                self.twin.delete_document(*args)
            else:
                self.twin.apply_score_updates(*args)
        return self.probe_query(position)

    def probe_query(self, position: int) -> bool:
        """One mid-storm query; degraded answers are tolerated and counted."""
        queries = self.queries
        if not queries:
            return True
        keywords = queries[position % len(queries)]
        try:
            response = self.index.search(keywords, k=self.config.k)
        except ReproError as exc:
            self.result.typed_errors.append(type(exc).__name__)
            if not self.recover():
                self.result.unrecovered = True
                return False
            return True
        if response.stats.degraded or self.index.degraded:
            self.result.degraded_queries += int(response.stats.degraded)
            self.result.quarantine_events += len(self.index.quarantined_shards())
            # A quarantined shard must not limp into degraded commits here —
            # the twin tracks the *global* committed prefix, so heal by
            # crash-recovery (which rolls every shard to that prefix).
            if not self.recover():
                self.result.unrecovered = True
                return False
            return True
        expected = self.twin.search(keywords, k=self.config.k)
        got = [(r.doc_id, r.score) for r in response.results]
        want = [(r.doc_id, r.score) for r in expected.results]
        if got != want:
            self.result.topk_match = False
            self.result.mismatches.append(
                f"mid-storm query {keywords}: expected {want}, got {got}"
            )
        return True


def _final_verification(run: _ChaosRun) -> None:
    """Compare the recovered index against the committed-prefix twin."""
    result, config = run.result, run.config
    index, twin = run.index, run.twin
    index.clear_faults()
    if index.degraded:
        # Lingering quarantine past the storm: heal it before comparing.
        if not run.recover():
            result.unrecovered = True
            return
        index = run.index
        index.clear_faults()
    excluded = set(index.quarantined_shards())
    shard_count = index.shard_count
    doc_ids = sorted(set(twin.documents.doc_ids())
                     | set(index.documents.doc_ids()))
    for doc_id in doc_ids:
        if excluded and shard_of_doc(doc_id, shard_count) in excluded:
            continue
        expected = twin.current_score(doc_id)
        actual = index.current_score(doc_id)
        if expected != actual:
            result.contents_match = False
            result.mismatches.append(
                f"doc {doc_id}: expected {expected}, got {actual}"
            )
    for keywords in run.queries:
        if excluded and any(shard_of_term(term, shard_count) in excluded
                            for term in keywords):
            continue
        want = [(r.doc_id, r.score)
                for r in twin.search(keywords, k=config.k).results]
        if excluded and any(shard_of_doc(doc_id, shard_count) in excluded
                            for doc_id, _score in want):
            continue
        got = [(r.doc_id, r.score)
               for r in index.search(keywords, k=config.k).results]
        if got != want:
            result.topk_match = False
            result.mismatches.append(
                f"query {keywords}: expected {want}, got {got}"
            )
    if index.durable:
        reports = index.scrub()
        reports = reports if isinstance(reports, list) else [reports]
        for report in reports:
            if report is not None and not report.clean:
                result.scrub_clean = False
                result.mismatches.append(
                    f"scrub: corrupt pages {list(report.corrupt_page_ids)}"
                )


def run_chaos_storm(path: "str | None", method: str, corpus: Iterable[Any],
                    config: "ChaosStormConfig | None" = None,
                    cache_pages: int = 1024, page_size: int = 512,
                    shards: int = 2,
                    **method_options: Any) -> ChaosStormResult:
    """One full chaos cycle: build, storm under faults, recover, verify.

    ``path`` is the durable directory (required for ``backend='file'``,
    ignored for ``'memory'``).  The returned result's :attr:`survived` is the
    single pass/fail bit: typed failures only, recovered state equal to the
    committed prefix of the fault-free twin, and clean checksums at rest.
    """
    config = config if config is not None else ChaosStormConfig()
    if config.backend == "file" and path is None:
        raise WorkloadError("the file backend needs a durable path")
    triples = _corpus_triples(corpus)
    initial_scores = {doc_id: score for doc_id, _terms, score in triples}
    update_config = config.update_config or UpdateWorkloadConfig(
        num_updates=config.num_batches * config.batch_size,
        seed=config.seed,
    )
    stream = UpdateWorkload(update_config, initial_scores).generate_list()
    batches = list(window_updates(stream, config.batch_size))[: config.num_batches]

    run = _ChaosRun(path, method, triples, config, cache_pages, page_size,
                    shards, method_options)
    for position, batch in enumerate(batches):
        if not run.run_cycle(position, batch):
            break
    _merge_fault_stats(run.result, run.index)
    _final_verification(run)
    run.index.clear_faults()
    run.index.close()
    run.twin.close()
    return run.result


def sweep_chaos_seeds(base_path: str, method: str, corpus: Iterable[Any],
                      seeds: Sequence[int] = (0, 1, 2),
                      config: "ChaosStormConfig | None" = None,
                      **kwargs: Any) -> list[ChaosStormResult]:
    """Run the storm under several fault seeds (one directory per seed)."""
    import dataclasses

    config = config if config is not None else ChaosStormConfig()
    results = []
    for seed in seeds:
        run_config = dataclasses.replace(config, fault_seed=seed)
        directory = (os.path.join(base_path, f"chaos-{seed:03d}")
                     if run_config.backend == "file" else None)
        results.append(
            run_chaos_storm(directory, method, corpus, config=run_config,
                            **kwargs)
        )
    return results


__all__ = [
    "ChaosStormConfig",
    "ChaosStormResult",
    "fault_seed_from_environ",
    "run_chaos_storm",
    "sweep_chaos_seeds",
]
