"""Data and workload generators mirroring the paper's experimental setup (§5.1).

* :mod:`repro.workloads.zipf` — Zipf samplers for term frequencies, score
  distributions and update skew.
* :mod:`repro.workloads.synthetic` — the synthetic corpus R(Id, StructuredColumn,
  TextColumn) with Zipf term frequencies and Zipf-distributed scores.
* :mod:`repro.workloads.updates` — score-update workloads (mean step size,
  focus set, update direction).
* :mod:`repro.workloads.queries` — keyword-query workloads (selectivity classes,
  conjunctive/disjunctive, number of desired results).
* :mod:`repro.workloads.archive` — an Internet-Archive-style relational data set
  (Movies / Reviews / Statistics) with the paper's example SVR specification.
* :mod:`repro.workloads.multiclient` — deterministic interleaved multi-client
  replay of mixed query/update traffic (the sharded-engine workload).
* :mod:`repro.workloads.service` — the same per-client schedules replayed by
  closed-loop *concurrent* client threads with a p50/p95/p99 latency profile
  and an optional background checkpoint cadence (the concurrent-engine
  service workload).
* :mod:`repro.workloads.restart` — crash-storm / restart workloads against the
  durable engine: kill mid-batch, recover, verify the committed prefix.
* :mod:`repro.workloads.chaos` — the same storms under *injected* storage
  faults (transients, torn appends, failed fsyncs, ENOSPC, bit-rot), holding
  the engine to typed failures and committed-prefix recovery.
"""

from repro.workloads.archive import ArchiveConfig, InternetArchiveDataset
from repro.workloads.chaos import (
    ChaosStormConfig,
    ChaosStormResult,
    fault_seed_from_environ,
    run_chaos_storm,
    sweep_chaos_seeds,
)
from repro.workloads.multiclient import (
    MultiClientConfig,
    MultiClientDriver,
    MultiClientResult,
)
from repro.workloads.queries import KeywordQuery, QueryWorkload, QueryWorkloadConfig
from repro.workloads.service import (
    ServiceLoadConfig,
    ServiceLoadDriver,
    ServiceLoadResult,
    percentile,
)
from repro.workloads.restart import (
    RestartStormConfig,
    RestartStormResult,
    build_persistent_index,
    run_crash_storm,
    sweep_crash_points,
)
from repro.workloads.synthetic import (
    SyntheticCorpus,
    SyntheticCorpusConfig,
    SyntheticDocument,
    generate_corpus,
)
from repro.workloads.updates import ScoreUpdate, UpdateWorkload, UpdateWorkloadConfig
from repro.workloads.zipf import ZipfSampler, zipf_scores

__all__ = [
    "ZipfSampler",
    "zipf_scores",
    "SyntheticCorpusConfig",
    "SyntheticCorpus",
    "SyntheticDocument",
    "generate_corpus",
    "UpdateWorkloadConfig",
    "UpdateWorkload",
    "ScoreUpdate",
    "QueryWorkloadConfig",
    "QueryWorkload",
    "KeywordQuery",
    "ArchiveConfig",
    "InternetArchiveDataset",
    "MultiClientConfig",
    "MultiClientDriver",
    "MultiClientResult",
    "ServiceLoadConfig",
    "ServiceLoadDriver",
    "ServiceLoadResult",
    "percentile",
    "RestartStormConfig",
    "RestartStormResult",
    "build_persistent_index",
    "run_crash_storm",
    "sweep_crash_points",
    "ChaosStormConfig",
    "ChaosStormResult",
    "fault_seed_from_environ",
    "run_chaos_storm",
    "sweep_chaos_seeds",
]
