"""An Internet-Archive-style relational data set.

The paper's real data set (movie descriptions, reviewer ratings, visit and
download counters from archive.org) is proprietary, so this module generates a
synthetic equivalent with the same schema and the same statistical behaviour:

* ``movies(movie_id, title, description)`` — text descriptions built from a
  movie-themed vocabulary,
* ``reviews(review_id, movie_id, rating)`` — ratings whose per-movie averages
  follow a skewed distribution,
* ``statistics(movie_id, visits, downloads)`` — visit/download counters with a
  Zipf(0.75) popularity profile (the parameter the authors measured on the real
  archive data).

The module also builds the paper's example SVR specification
(``Agg(s1,s2,s3) = s1*100 + s2/2 + s3``) over those tables, so the examples and
benchmarks can exercise the full §3 pipeline end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.core.scorespec import ScoreSpec
from repro.relational.database import Database
from repro.relational.functions import aggregate_lookup, column_lookup
from repro.relational.types import ColumnType
from repro.workloads.zipf import zipf_scores

#: Vocabulary used to build movie descriptions.  Includes the paper's
#: "golden gate" running example so the README snippets work verbatim.
_DESCRIPTION_VOCABULARY = (
    "golden gate bridge san francisco documentary archive footage historic "
    "amateur film short feature thrift american city street car ferry ocean "
    "pacific coast sunset tower cable fog morning harbor sailors crossing "
    "construction workers steel rivets engineer span suspension deck travel "
    "tourists newsreel silent reel restored collection library public domain "
    "music score narrator interview veteran memory celebration anniversary "
    "parade crowd festival earthquake rebuild skyline panorama aerial view"
).split()

_TITLE_WORDS = (
    "golden gate american thrift amateur film crossing the bridge city lights "
    "harbor days steel span fog over the bay pacific morning newsreel nights"
).split()


@dataclass(frozen=True)
class ArchiveConfig:
    """Parameters of the generated archive data set."""

    num_movies: int = 300
    description_terms: int = 40
    max_reviews_per_movie: int = 8
    max_visits: int = 20000
    max_downloads: int = 5000
    popularity_zipf: float = 0.75
    seed: int = 17

    def __post_init__(self) -> None:
        if self.num_movies < 1:
            raise WorkloadError("num_movies must be positive")
        if self.description_terms < 1:
            raise WorkloadError("description_terms must be positive")


@dataclass
class InternetArchiveDataset:
    """Generator for the Movies / Reviews / Statistics tables."""

    config: ArchiveConfig

    def populate(self, database: Database) -> None:
        """Create and fill the three tables in ``database``."""
        rng = random.Random(self.config.seed)
        movies = database.create_table(
            "movies",
            columns=[
                ("movie_id", ColumnType.INTEGER),
                ("title", ColumnType.STRING),
                ("description", ColumnType.TEXT),
            ],
            primary_key="movie_id",
        )
        reviews = database.create_table(
            "reviews",
            columns=[
                ("review_id", ColumnType.INTEGER),
                ("movie_id", ColumnType.INTEGER),
                ("rating", ColumnType.FLOAT),
            ],
            primary_key="review_id",
        )
        reviews.create_index("movie_id")
        statistics = database.create_table(
            "statistics",
            columns=[
                ("movie_id", ColumnType.INTEGER),
                ("visits", ColumnType.INTEGER),
                ("downloads", ColumnType.INTEGER),
            ],
            primary_key="movie_id",
        )

        popularity = zipf_scores(
            self.config.num_movies, 1.0, self.config.popularity_zipf, rng
        )
        review_id = 0
        for index in range(self.config.num_movies):
            movie_id = index + 1
            popular = popularity[index]
            movies.insert(
                {
                    "movie_id": movie_id,
                    "title": self._title(rng, movie_id),
                    "description": self._description(rng),
                }
            )
            for _ in range(rng.randint(1, self.config.max_reviews_per_movie)):
                review_id += 1
                base_rating = 2.0 + 3.0 * popular
                rating = min(5.0, max(1.0, rng.gauss(base_rating, 0.5)))
                reviews.insert(
                    {"review_id": review_id, "movie_id": movie_id, "rating": rating}
                )
            statistics.insert(
                {
                    "movie_id": movie_id,
                    "visits": int(popular * self.config.max_visits),
                    "downloads": int(popular * self.config.max_downloads),
                }
            )

    def build_score_spec(self, database: Database,
                         include_term_score: bool = False) -> ScoreSpec:
        """The paper's §3.1 example specification over the generated tables.

        ``S1`` = average review rating, ``S2`` = number of visits, ``S3`` =
        number of downloads, ``Agg(s1,s2,s3) = s1*100 + s2/2 + s3``.
        """
        s1 = aggregate_lookup(
            database, "S1", table="reviews", key_column="movie_id",
            value_column="rating", aggregate="avg",
        )
        s2 = column_lookup(
            database, "S2", table="statistics", key_column="movie_id",
            value_column="visits",
        )
        s3 = column_lookup(
            database, "S3", table="statistics", key_column="movie_id",
            value_column="downloads",
        )
        return ScoreSpec.weighted(
            [s1, s2, s3], weights=[100.0, 0.5, 1.0],
            include_term_score=include_term_score, term_weight=0.5,
        )

    def score_dependencies(self) -> list[tuple[str, str]]:
        """The ``(table, key_column)`` dependencies of the example specification."""
        return [("reviews", "movie_id"), ("statistics", "movie_id")]

    # -- text generation -----------------------------------------------------------

    def _title(self, rng: random.Random, movie_id: int) -> str:
        words = rng.sample(_TITLE_WORDS, k=min(3, len(_TITLE_WORDS)))
        return f"{' '.join(words)} #{movie_id}".title()

    def _description(self, rng: random.Random) -> str:
        words = [
            rng.choice(_DESCRIPTION_VOCABULARY)
            for _ in range(self.config.description_terms)
        ]
        return " ".join(words)
