"""Zipf samplers.

Three quantities in the paper follow Zipf distributions: term frequencies in
the synthetic text (parameter 0.1, "as in English"), document scores
(parameter 0.75, matching what the authors measured on the Internet Archive),
and the score-update target distribution (documents with higher scores are
updated more often).  :class:`ZipfSampler` covers all three.
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence

from repro.errors import WorkloadError


class ZipfSampler:
    """Samples ranks ``1..n`` with probability proportional to ``1 / rank**s``.

    Parameters
    ----------
    n:
        Number of ranks.
    s:
        Zipf exponent (``s = 0`` degenerates to the uniform distribution).
    rng:
        Random generator; a seeded one should be supplied for reproducibility.
    """

    def __init__(self, n: int, s: float, rng: random.Random | None = None) -> None:
        if n < 1:
            raise WorkloadError(f"n must be positive, got {n}")
        if s < 0:
            raise WorkloadError(f"the Zipf exponent must be non-negative, got {s}")
        self.n = n
        self.s = s
        self._rng = rng if rng is not None else random.Random(0)
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample_rank(self) -> int:
        """Draw one rank in ``1..n`` (rank 1 is the most probable)."""
        value = self._rng.random()
        return bisect.bisect_left(self._cumulative, value) + 1

    def sample_ranks(self, count: int) -> list[int]:
        """Draw ``count`` independent ranks."""
        if count < 0:
            raise WorkloadError(f"count must be non-negative, got {count}")
        return [self.sample_rank() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """Probability mass of a given rank."""
        if rank < 1 or rank > self.n:
            raise WorkloadError(f"rank must be in 1..{self.n}, got {rank}")
        if rank == 1:
            return self._cumulative[0]
        return self._cumulative[rank - 1] - self._cumulative[rank - 2]


def zipf_scores(count: int, max_score: float, s: float,
                rng: random.Random | None = None) -> list[float]:
    """Generate ``count`` document scores with a Zipf-shaped distribution.

    Scores are assigned by rank — the document at rank ``r`` receives
    ``max_score / r**s`` — and then shuffled so that document ids and scores
    are uncorrelated, matching the paper's synthetic Score table (values in
    ``[0, max_score]``, Zipf parameter ``s``).
    """
    if count < 0:
        raise WorkloadError(f"count must be non-negative, got {count}")
    if max_score <= 0:
        raise WorkloadError(f"max_score must be positive, got {max_score}")
    if s < 0:
        raise WorkloadError(f"the Zipf exponent must be non-negative, got {s}")
    rng = rng if rng is not None else random.Random(0)
    scores = [max_score / ((rank + 1) ** s) for rank in range(count)]
    rng.shuffle(scores)
    return scores
