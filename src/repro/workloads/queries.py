"""Keyword-query workloads (§5.1).

The paper studies three selectivity classes — keywords drawn from the 350 most
frequent terms (unselective: long inverted lists), the top 1,600 (medium) and
the top 15,000 (selective) — with a varying number of desired results ``k`` and
both conjunctive and disjunctive semantics.  Because the reproduction runs at a
reduced corpus scale, the class boundaries are expressed as *fractions* of the
vocabulary by default, with the paper's absolute values available via
:meth:`QueryWorkloadConfig.paper_scale`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import WorkloadError

#: Fraction of the (frequency-ranked) vocabulary each selectivity class draws from.
_SELECTIVITY_FRACTIONS = {
    "unselective": 0.00175,   # paper: top 350 of 200,000 terms
    "medium": 0.008,          # paper: top 1,600
    "selective": 0.075,       # paper: top 15,000
}


@dataclass(frozen=True)
class KeywordQuery:
    """One keyword query: terms, number of desired results and semantics."""

    keywords: tuple[str, ...]
    k: int = 10
    conjunctive: bool = True


@dataclass(frozen=True)
class QueryWorkloadConfig:
    """Parameters of a query workload."""

    num_queries: int = 50                # paper: 50 independent measurements
    terms_per_query: int = 2
    selectivity: str = "unselective"     # "unselective" | "medium" | "selective"
    k: int = 10
    conjunctive: bool = True
    seed: int = 23

    def __post_init__(self) -> None:
        if self.num_queries < 1:
            raise WorkloadError("num_queries must be positive")
        if self.terms_per_query < 1:
            raise WorkloadError("terms_per_query must be positive")
        if self.selectivity not in _SELECTIVITY_FRACTIONS:
            raise WorkloadError(
                f"selectivity must be one of {sorted(_SELECTIVITY_FRACTIONS)}, "
                f"got {self.selectivity!r}"
            )
        if self.k < 1:
            raise WorkloadError("k must be positive")

    def candidate_pool_size(self, vocabulary_size: int) -> int:
        """Number of frequency-ranked terms this class draws its keywords from."""
        fraction = _SELECTIVITY_FRACTIONS[self.selectivity]
        return max(self.terms_per_query, int(round(fraction * vocabulary_size)))


class QueryWorkload:
    """Generates a deterministic list of keyword queries.

    Parameters
    ----------
    config:
        Workload parameters.
    frequent_terms:
        The corpus vocabulary ordered by decreasing frequency (see
        :meth:`repro.workloads.synthetic.SyntheticCorpus.frequent_terms`).
    vocabulary_size:
        Total vocabulary size; defaults to ``len(frequent_terms)``.
    """

    def __init__(self, config: QueryWorkloadConfig, frequent_terms: Sequence[str],
                 vocabulary_size: int | None = None) -> None:
        if not frequent_terms:
            raise WorkloadError("the query workload needs a non-empty vocabulary")
        self.config = config
        vocabulary_size = (
            vocabulary_size if vocabulary_size is not None else len(frequent_terms)
        )
        pool_size = min(
            config.candidate_pool_size(vocabulary_size), len(frequent_terms)
        )
        self._pool = list(frequent_terms[:pool_size])
        if len(self._pool) < config.terms_per_query:
            raise WorkloadError(
                f"the keyword pool has {len(self._pool)} terms but queries need "
                f"{config.terms_per_query}"
            )
        self._rng = random.Random(config.seed)

    @property
    def pool(self) -> list[str]:
        """The terms queries are drawn from."""
        return list(self._pool)

    def generate(self) -> list[KeywordQuery]:
        """Generate ``config.num_queries`` keyword queries."""
        queries = []
        for _ in range(self.config.num_queries):
            keywords = tuple(self._rng.sample(self._pool, self.config.terms_per_query))
            queries.append(
                KeywordQuery(
                    keywords=keywords, k=self.config.k, conjunctive=self.config.conjunctive
                )
            )
        return queries
