"""Synthetic corpus generator (§5.1).

The paper's synthetic data set is a relation ``R(Id, StructuredColumn,
TextColumn)``: 100,000 documents of 2,000 terms each drawn from a 200,000-term
vocabulary with Zipf(0.1) term frequencies, plus a Score table with values in
``[0, 100000]`` following Zipf(0.75).  A pure-Python reproduction runs the same
*shape* at a reduced default scale; every parameter is configurable and the
paper-scale values are available through :meth:`SyntheticCorpusConfig.paper_scale`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator

from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler, zipf_scores


@dataclass(frozen=True)
class SyntheticCorpusConfig:
    """Parameters of the synthetic corpus.

    Defaults are a laptop-scale rendition of the paper's defaults (which are in
    the comments); the ratios between parameters — vocabulary much larger than
    a document, Zipfian term reuse, heavily skewed scores — are preserved.
    """

    num_docs: int = 2000                 # paper: 100,000
    terms_per_doc: int = 120             # paper: 2,000
    num_distinct_terms: int = 20000      # paper: 200,000
    term_zipf: float = 0.8               # paper: 0.1 over a 200k vocabulary
    max_score: float = 100000.0          # paper: 100,000
    score_zipf: float = 0.75             # paper: 0.75
    structured_column_bytes: int = 100   # paper: 100-byte structured column
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_docs < 1:
            raise WorkloadError("num_docs must be positive")
        if self.terms_per_doc < 1:
            raise WorkloadError("terms_per_doc must be positive")
        if self.num_distinct_terms < 1:
            raise WorkloadError("num_distinct_terms must be positive")

    @classmethod
    def paper_scale(cls) -> "SyntheticCorpusConfig":
        """The paper's actual default parameters (805 MB of data; slow in Python)."""
        return cls(
            num_docs=100000,
            terms_per_doc=2000,
            num_distinct_terms=200000,
            term_zipf=0.1,
            max_score=100000.0,
            score_zipf=0.75,
        )

    @classmethod
    def tiny(cls, seed: int = 7) -> "SyntheticCorpusConfig":
        """A very small corpus for unit tests."""
        return cls(num_docs=120, terms_per_doc=25, num_distinct_terms=400, seed=seed)

    def scaled(self, factor: float) -> "SyntheticCorpusConfig":
        """A copy with the document count scaled by ``factor`` (at least one doc)."""
        if factor <= 0:
            raise WorkloadError(f"scale factor must be positive, got {factor}")
        return replace(self, num_docs=max(1, int(self.num_docs * factor)))


@dataclass(frozen=True)
class SyntheticDocument:
    """One generated document: id, term sequence, structured payload and score."""

    doc_id: int
    terms: tuple[str, ...]
    structured_value: str
    score: float

    @property
    def text(self) -> str:
        """The document rendered as a text string (for relational-table storage)."""
        return " ".join(self.terms)


@dataclass
class SyntheticCorpus:
    """A generated corpus plus the vocabulary statistics the workloads need."""

    config: SyntheticCorpusConfig
    documents: list[SyntheticDocument]

    def __len__(self) -> int:
        return len(self.documents)

    def scores(self) -> dict[int, float]:
        """Document id -> initial score."""
        return {document.doc_id: document.score for document in self.documents}

    def doc_ids(self) -> list[int]:
        """All document ids in generation order."""
        return [document.doc_id for document in self.documents]

    def frequent_terms(self, count: int) -> list[str]:
        """The ``count`` most frequent terms, most frequent first.

        The query workloads draw their keywords from prefixes of this list —
        the paper's "top 350 / top 1,600 / top 15,000 most frequent terms".
        """
        frequencies: dict[str, int] = {}
        for document in self.documents:
            for term in document.terms:
                frequencies[term] = frequencies.get(term, 0) + 1
        ordered = sorted(frequencies.items(), key=lambda item: (-item[1], item[0]))
        return [term for term, _freq in ordered[:count]]

    def iter_documents(self) -> Iterator[SyntheticDocument]:
        """Iterate documents in generation order."""
        return iter(self.documents)


def term_name(rank: int) -> str:
    """Stable name of the term with frequency rank ``rank`` (1-based)."""
    return f"term{rank:06d}"


def generate_corpus(config: SyntheticCorpusConfig | None = None) -> SyntheticCorpus:
    """Generate a synthetic corpus according to ``config``.

    Generation is fully deterministic given the config's ``seed``.
    """
    config = config if config is not None else SyntheticCorpusConfig()
    rng = random.Random(config.seed)
    term_sampler = ZipfSampler(config.num_distinct_terms, config.term_zipf, rng)
    scores = zipf_scores(config.num_docs, config.max_score, config.score_zipf, rng)
    documents = []
    for index in range(config.num_docs):
        doc_id = index + 1
        ranks = term_sampler.sample_ranks(config.terms_per_doc)
        terms = tuple(term_name(rank) for rank in ranks)
        structured_value = _structured_payload(rng, config.structured_column_bytes)
        documents.append(
            SyntheticDocument(
                doc_id=doc_id,
                terms=terms,
                structured_value=structured_value,
                score=scores[index],
            )
        )
    return SyntheticCorpus(config=config, documents=documents)


def _structured_payload(rng: random.Random, size: int) -> str:
    """A fixed-size printable payload simulating the 100-byte structured column."""
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    return "".join(rng.choice(alphabet) for _ in range(size))
