"""Tokenisation of raw text into term sequences."""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import TokenizationError

#: Default token pattern: maximal runs of letters, digits and apostrophes.
_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9']+")


class Tokenizer:
    """Splits text into raw tokens.

    Parameters
    ----------
    pattern:
        Regular expression describing a single token.  The default matches
        alphanumeric runs, which is what the paper's synthetic corpus (random
        English-like terms) and the Internet Archive descriptions need.
    min_length / max_length:
        Tokens outside this length range are dropped.
    """

    def __init__(
        self,
        pattern: str | re.Pattern[str] | None = None,
        min_length: int = 1,
        max_length: int = 64,
    ) -> None:
        if min_length < 1:
            raise TokenizationError(f"min_length must be at least 1, got {min_length}")
        if max_length < min_length:
            raise TokenizationError(
                f"max_length ({max_length}) must be >= min_length ({min_length})"
            )
        if pattern is None:
            self._pattern = _TOKEN_PATTERN
        elif isinstance(pattern, re.Pattern):
            self._pattern = pattern
        else:
            self._pattern = re.compile(pattern)
        self.min_length = min_length
        self.max_length = max_length

    def tokenize(self, text: str) -> list[str]:
        """Return the list of tokens in ``text`` (order preserved, duplicates kept)."""
        return list(self.iter_tokens(text))

    def iter_tokens(self, text: str) -> Iterator[str]:
        """Yield tokens in ``text`` one at a time."""
        if not isinstance(text, str):
            raise TokenizationError(f"expected a string to tokenize, got {type(text).__name__}")
        for match in self._pattern.finditer(text):
            token = match.group(0)
            if self.min_length <= len(token) <= self.max_length:
                yield token
