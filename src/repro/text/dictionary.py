"""Term dictionary: per-term document frequencies and term identifiers."""

from __future__ import annotations

from typing import Iterator

from repro.errors import TextError


class TermDictionary:
    """Tracks the vocabulary of an indexed collection.

    For every term the dictionary records a stable integer term id (assigned
    in first-seen order) and the term's document frequency — the number of
    documents currently containing it.  Document frequencies feed the IDF part
    of term scoring and let index implementations size their fancy lists.
    """

    def __init__(self) -> None:
        self._term_ids: dict[str, int] = {}
        self._doc_freq: dict[str, int] = {}

    def add_document_terms(self, terms: set[str]) -> None:
        """Record that a new document contains the given distinct terms."""
        for term in terms:
            if term not in self._term_ids:
                self._term_ids[term] = len(self._term_ids)
                self._doc_freq[term] = 0
            self._doc_freq[term] += 1

    def remove_document_terms(self, terms: set[str]) -> None:
        """Record that a document containing the given distinct terms was removed."""
        for term in terms:
            current = self._doc_freq.get(term)
            if current is None or current <= 0:
                raise TextError(
                    f"cannot decrement document frequency of unseen term {term!r}"
                )
            self._doc_freq[term] = current - 1

    def update_document_terms(self, old_terms: set[str], new_terms: set[str]) -> None:
        """Adjust document frequencies for a content update."""
        self.add_document_terms(new_terms - old_terms)
        self.remove_document_terms(old_terms - new_terms)

    def term_id(self, term: str) -> int:
        """Stable integer id of ``term`` (raises for unknown terms)."""
        term_id = self._term_ids.get(term)
        if term_id is None:
            raise TextError(f"unknown term {term!r}")
        return term_id

    def document_frequency(self, term: str) -> int:
        """Number of documents currently containing ``term`` (0 when unknown)."""
        return self._doc_freq.get(term, 0)

    def contains(self, term: str) -> bool:
        """Whether the term has ever been seen."""
        return term in self._term_ids

    def __contains__(self, term: str) -> bool:
        return self.contains(term)

    def __len__(self) -> int:
        return len(self._term_ids)

    def terms(self) -> Iterator[str]:
        """Iterate all terms ever seen, in first-seen order."""
        return iter(self._term_ids)

    def live_terms(self) -> Iterator[str]:
        """Iterate terms whose document frequency is currently positive."""
        return (term for term, freq in self._doc_freq.items() if freq > 0)
