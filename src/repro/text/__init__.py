"""Text management substrate: tokenisation, document storage and term scoring.

This is the "black box" text component of the SQL/MM architecture in §3 of the
paper, minus the inverted lists themselves (those are the paper's contribution
and live in :mod:`repro.core.indexes`).  It provides:

* :class:`~repro.text.tokenizer.Tokenizer` and
  :class:`~repro.text.analyzer.Analyzer` — turning raw text into normalised
  terms,
* :class:`~repro.text.documents.DocumentStore` — the forward index
  (document id -> term frequencies), which the score-update algorithm needs to
  know a document's terms (``Content(id)`` in Algorithm 1), and
* :mod:`repro.text.termscore` — TF, IDF and normalised-TF scoring used by the
  TermScore index variants and the TF-IDF baseline.
"""

from repro.text.analyzer import Analyzer
from repro.text.dictionary import TermDictionary
from repro.text.documents import Document, DocumentStore
from repro.text.termscore import TermScorer
from repro.text.tokenizer import Tokenizer

__all__ = [
    "Tokenizer",
    "Analyzer",
    "Document",
    "DocumentStore",
    "TermDictionary",
    "TermScorer",
]
