"""Forward index: document id -> term frequencies.

Algorithm 1 in the paper needs ``Content(id)`` — the set of terms of the
document whose score changed — to know which short lists to touch.  Content
updates (Appendix A.1) additionally need the *previous* term set to compute
added and removed terms.  :class:`DocumentStore` is that forward index.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import DocumentNotFoundError, TextError


@dataclass(frozen=True)
class Document:
    """An analysed document.

    Attributes
    ----------
    doc_id:
        Integer document identifier (the primary-key value of the indexed row).
    term_frequencies:
        Mapping term -> number of occurrences in the document.
    length:
        Total number of term occurrences (including duplicates).
    """

    doc_id: int
    term_frequencies: Mapping[str, int]
    length: int

    @classmethod
    def from_terms(cls, doc_id: int, terms: Iterable[str]) -> "Document":
        """Build a document from an (ordered, possibly repeating) term sequence."""
        counts = Counter(terms)
        return cls(doc_id=doc_id, term_frequencies=dict(counts), length=sum(counts.values()))

    @property
    def distinct_terms(self) -> set[str]:
        """The set of distinct terms in the document."""
        return set(self.term_frequencies)

    def term_frequency(self, term: str) -> int:
        """Occurrences of ``term`` in the document (0 when absent)."""
        return self.term_frequencies.get(term, 0)


class DocumentStore:
    """In-memory forward index over the analysed documents.

    The store is intentionally memory-resident: the paper charges neither
    queries nor score updates for forward-index accesses (every method needs
    them equally), so keeping it out of the paged storage keeps the I/O
    accounting focused on what the paper varies.
    """

    def __init__(self) -> None:
        self._documents: dict[int, Document] = {}

    def add(self, document: Document) -> None:
        """Add a new document (raises if the id is already present)."""
        if document.doc_id in self._documents:
            raise TextError(f"document {document.doc_id} already exists")
        self._documents[document.doc_id] = document

    def add_terms(self, doc_id: int, terms: Iterable[str]) -> Document:
        """Analyzed-terms convenience wrapper around :meth:`add`."""
        document = Document.from_terms(doc_id, terms)
        self.add(document)
        return document

    def replace(self, document: Document) -> Document:
        """Replace an existing document's content; returns the old version."""
        old = self._documents.get(document.doc_id)
        if old is None:
            raise DocumentNotFoundError(f"document {document.doc_id} does not exist")
        self._documents[document.doc_id] = document
        return old

    def remove(self, doc_id: int) -> Document:
        """Remove a document and return it."""
        document = self._documents.pop(doc_id, None)
        if document is None:
            raise DocumentNotFoundError(f"document {doc_id} does not exist")
        return document

    def get(self, doc_id: int) -> Document:
        """Return the document with id ``doc_id``."""
        document = self._documents.get(doc_id)
        if document is None:
            raise DocumentNotFoundError(f"document {doc_id} does not exist")
        return document

    def contains(self, doc_id: int) -> bool:
        """Whether a document with this id exists."""
        return doc_id in self._documents

    def __contains__(self, doc_id: int) -> bool:
        return self.contains(doc_id)

    def __len__(self) -> int:
        return len(self._documents)

    def doc_ids(self) -> Iterator[int]:
        """Iterate document ids in insertion order."""
        return iter(self._documents)

    def documents(self) -> Iterator[Document]:
        """Iterate stored documents in insertion order."""
        return iter(self._documents.values())

    def average_length(self) -> float:
        """Mean document length (0.0 for an empty store)."""
        if not self._documents:
            return 0.0
        return sum(doc.length for doc in self._documents.values()) / len(self._documents)
