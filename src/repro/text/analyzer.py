"""Analysis pipeline: tokenisation plus term normalisation and filtering."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.text.tokenizer import Tokenizer

#: A small English stopword list.  The paper's synthetic corpus uses random
#: terms so stopwords barely matter there, but the Internet-Archive-style
#: examples benefit from dropping them.
DEFAULT_STOPWORDS = frozenset(
    """a an and are as at be but by for from has have in is it its of on or that the
    this to was were will with""".split()
)


class Analyzer:
    """Turns raw text into a normalised term sequence.

    The pipeline is: tokenize -> lowercase (optional) -> stopword filter
    (optional).  Term *stemming* is deliberately omitted: the paper does not
    stem, and stemming would change corpus statistics such as the number of
    distinct terms that the synthetic workload controls precisely.

    Parameters
    ----------
    tokenizer:
        Tokenizer used for the first stage (a default one is created if omitted).
    lowercase:
        Whether to lowercase tokens.
    stopwords:
        Terms to drop after normalisation; pass an empty set to keep everything.
    """

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        lowercase: bool = True,
        stopwords: Iterable[str] | None = None,
    ) -> None:
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.lowercase = lowercase
        if stopwords is None:
            self.stopwords = frozenset()
        else:
            self.stopwords = frozenset(
                word.lower() if lowercase else word for word in stopwords
            )

    @classmethod
    def english(cls) -> "Analyzer":
        """An analyzer with the default English stopword list."""
        return cls(stopwords=DEFAULT_STOPWORDS)

    def analyze(self, text: str) -> list[str]:
        """Return the normalised terms of ``text``."""
        return list(self.iter_terms(text))

    def iter_terms(self, text: str) -> Iterator[str]:
        """Yield the normalised terms of ``text`` one at a time."""
        for token in self.tokenizer.iter_tokens(text):
            term = token.lower() if self.lowercase else token
            if term in self.stopwords:
                continue
            yield term

    def normalize_query_terms(self, keywords: Iterable[str]) -> list[str]:
        """Normalise user-supplied query keywords the same way documents are analysed.

        Keywords that normalise to nothing (stopwords, punctuation-only) are
        dropped; duplicates are removed while preserving order.
        """
        seen: dict[str, None] = {}
        for keyword in keywords:
            for term in self.iter_terms(keyword):
                seen.setdefault(term, None)
        return list(seen)
