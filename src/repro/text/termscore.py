"""Term-based scoring: TF, IDF, normalised TF and TF-IDF.

The Chunk-TermScore and ID-TermScore methods (§4.3.3) combine the SVR score
with a per-term score such as the normalised term frequency, and the paper's
motivating comparison is against plain TF-IDF ranking.  :class:`TermScorer`
implements both so the same code path serves the baseline ranking and the
combined scoring function ``f = svr_score + sum(term_score(t, d))``.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.text.dictionary import TermDictionary
from repro.text.documents import Document, DocumentStore


class TermScorer:
    """Computes TF, IDF and TF-IDF style scores for (term, document) pairs.

    Parameters
    ----------
    documents:
        Forward index used for term frequencies and document lengths.
    dictionary:
        Term dictionary used for document frequencies.
    """

    def __init__(self, documents: DocumentStore, dictionary: TermDictionary) -> None:
        self.documents = documents
        self.dictionary = dictionary

    # -- building blocks ------------------------------------------------------

    def normalized_tf(self, term: str, document: Document) -> float:
        """Length-normalised term frequency ``tf(t, d) / |d|``.

        This is the per-posting term score the paper stores in the TermScore
        index variants ("such as the normalized TF score", §4.3.3).
        """
        if document.length == 0:
            return 0.0
        return document.term_frequency(term) / document.length

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency ``ln(1 + N / df)``.

        Terms never seen get the largest possible IDF for the collection size.
        """
        total = len(self.documents)
        if total == 0:
            return 0.0
        frequency = self.dictionary.document_frequency(term)
        return math.log(1.0 + total / max(frequency, 1))

    def tf_idf(self, term: str, document: Document) -> float:
        """Classic TF-IDF contribution of one term to one document."""
        return self.normalized_tf(term, document) * self.idf(term)

    # -- whole-query scores ------------------------------------------------------

    def term_score(self, term: str, doc_id: int) -> float:
        """Normalised TF of ``term`` in document ``doc_id`` (0.0 for unknown docs)."""
        if not self.documents.contains(doc_id):
            return 0.0
        return self.normalized_tf(term, self.documents.get(doc_id))

    def query_tfidf(self, keywords: Iterable[str], doc_id: int) -> float:
        """Sum of TF-IDF contributions of the query keywords for one document.

        This is the traditional-ranking baseline the paper contrasts SVR with
        in the introduction.
        """
        if not self.documents.contains(doc_id):
            return 0.0
        document = self.documents.get(doc_id)
        return sum(self.tf_idf(term, document) for term in keywords)

    def query_term_scores(self, keywords: Iterable[str], doc_id: int) -> dict[str, float]:
        """Per-keyword normalised TF scores for one document."""
        if not self.documents.contains(doc_id):
            return {term: 0.0 for term in keywords}
        document = self.documents.get(doc_id)
        return {term: self.normalized_tf(term, document) for term in keywords}

    @staticmethod
    def combine(svr_score: float, term_scores: Mapping[str, float],
                term_weight: float = 1.0) -> float:
        """The paper's combination function ``f = svr + term_weight * sum(term scores)``.

        §4.3.3 fixes ``f = score_svr(d) + sum_i score_term(t_i, d)`` and notes the
        technique generalises to any monotonic ``f``; the optional weight keeps
        that monotone shape while letting examples rebalance the two parts.
        """
        return svr_score + term_weight * sum(term_scores.values())
