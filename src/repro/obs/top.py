"""Terminal dashboard over a live monitoring endpoint (``repro`` top).

Polls an :mod:`repro.obs.http` endpoint's ``/snapshot`` route and renders a
compact screen: query/update rates and windowed tail latencies from the
rolling time-series, SLO burn-rate status, per-shard I/O and health, and the
most recent events.  Stdlib only (``urllib``), so it runs anywhere the
engine does::

    python -m repro.obs.top --url http://127.0.0.1:9188
    python -m repro.obs.top --url http://127.0.0.1:9188 --once   # one frame
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

_CLEAR = "\x1b[2J\x1b[H"


def _fetch(url: str, timeout: float) -> dict:
    with urllib.request.urlopen(url + "/snapshot", timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _rate(window: "dict | None", name: str) -> float:
    if window is None:
        return 0.0
    return float(window.get("rates", {}).get(name, 0.0))


def render_frame(snapshot: dict) -> str:
    """One dashboard frame from a ``/snapshot`` payload."""
    lines = []
    engine = snapshot["engine"]
    state = "DEGRADED" if engine["degraded"] else "healthy"
    lines.append(
        f"repro top — method={engine['method']} shards={engine['shards']} "
        f"threads={engine['threads']} [{state}]"
    )
    timeseries = snapshot.get("timeseries") or {}
    windows = timeseries.get("windows") or []
    latest = windows[-1] if windows else None
    latency = (latest or {}).get("histograms", {}).get("query.latency_ms")
    lines.append(
        "  last window: qps={qps:.1f} ups={ups:.1f}".format(
            qps=_rate(latest, "query.count"),
            ups=_rate(latest, "update.count"),
        )
        + (
            f" p50={latency['p50']:.2f}ms p95={latency['p95']:.2f}ms "
            f"p99={latency['p99']:.2f}ms" if latency else " (no queries)"
        )
    )
    slo = snapshot.get("slo") or {}
    for name, entry in (slo.get("objectives") or {}).items():
        flag = "BURNING" if entry["burning"] else "ok"
        lines.append(
            f"  slo {name}: fast={entry['fast']['burn_rate']:.2f}x "
            f"slow={entry['slow']['burn_rate']:.2f}x [{flag}]"
        )
    health = {row["shard"]: row for row in snapshot.get("shard_health", [])}
    lines.append("  shard     reads    writes  pool_hits  status")
    for row in snapshot.get("shard_io", []):
        shard = row["shard"]
        tag = "-" if shard is None else shard
        status = "ok"
        entry = health.get(shard if shard is not None else 0)
        if entry and entry["quarantined"]:
            status = f"QUARANTINED ({entry['reason']})"
        lines.append(
            f"  {tag!s:>5} {row['disk']['reads']:>9} {row['disk']['writes']:>9} "
            f"{row['pool']['hits']:>10}  {status}"
        )
    counters = snapshot.get("metrics", {}).get("counters", {})
    lines.append(
        f"  lifetime: queries={counters.get('query.count', 0):g} "
        f"updates={counters.get('update.count', 0):g} "
        f"degraded={counters.get('query.degraded', 0):g} "
        f"slow_queries={len(snapshot.get('slow_queries', []))}"
    )
    events = snapshot.get("events", [])
    if events:
        lines.append("  recent events:")
        for event in events[-5:]:
            shard = "" if event["shard"] is None else f" shard={event['shard']}"
            lines.append(f"    #{event['seq']} {event['kind']}{shard}")
    return "\n".join(lines) + "\n"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="Terminal dashboard over a live monitoring endpoint.",
    )
    parser.add_argument("--url", required=True,
                        help="endpoint base URL, e.g. http://127.0.0.1:9188")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh interval in seconds (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit (no screen clearing)")
    parser.add_argument("--timeout", type=float, default=5.0,
                        help="per-request timeout in seconds")
    args = parser.parse_args(argv)

    url = args.url.rstrip("/")
    while True:
        try:
            frame = render_frame(_fetch(url, args.timeout))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            frame = f"repro top — cannot reach {url}: {exc}\n"
            if args.once:
                sys.stderr.write(frame)
                return 1
        if args.once:
            sys.stdout.write(frame)
            return 0
        sys.stdout.write(_CLEAR + frame)
        sys.stdout.flush()
        try:
            time.sleep(max(0.2, args.interval))
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    sys.exit(main())
