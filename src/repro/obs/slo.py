"""SLO burn-rate tracking over the sampler's rolling windows.

An objective declares an allowed *bad fraction* — "at most 1% of queries
slower than 100 ms", "at most 0.1% of queries degraded" — and the tracker
evaluates it over a **fast/slow window pair** (multiwindow burn-rate
alerting): the burn rate is ``observed bad fraction / allowed bad fraction``
aggregated over the last N sampler windows, and an objective is *burning*
only when both the fast window (seconds — catches a cliff) and the slow
window (minutes — rejects a blip) exceed the burn threshold.  A burn rate of
1.0 means the error budget is being spent exactly as fast as it accrues.

Evaluation happens on every sampler roll (router tick or daemon): it reads
the ring only — no storage access — and publishes ``slo.burn_rate`` /
``slo.burning`` gauges plus an edge-triggered ``slo_burn`` event into the
router-owned event log.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ObservabilityError


@dataclass(frozen=True)
class SLObjective:
    """One declared objective evaluated as an allowed bad fraction.

    ``kind="latency"`` counts observations of ``histogram`` above
    ``threshold_ms`` as bad; ``kind="ratio"`` divides the ``bad_counter``
    delta by the ``total_counter`` delta.  ``target`` is the allowed bad
    fraction; ``fast_windows``/``slow_windows`` are sampler-window counts.
    """

    name: str
    kind: str
    target: float
    threshold_ms: "float | None" = None
    histogram: str = "query.latency_ms"
    bad_counter: str = "query.degraded"
    total_counter: str = "query.count"
    fast_windows: int = 12
    slow_windows: int = 60
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "ratio"):
            raise ObservabilityError(
                f"SLO kind must be 'latency' or 'ratio', got {self.kind!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ObservabilityError(
                f"SLO target must be a fraction in (0, 1), got {self.target!r}"
            )
        if self.kind == "latency" and self.threshold_ms is None:
            raise ObservabilityError(
                f"latency SLO {self.name!r} needs a threshold_ms"
            )


#: Default objectives: tail latency (≤1% of queries slower than 100 ms — the
#: slow-query log's default bar) and availability (≤0.1% degraded answers).
DEFAULT_OBJECTIVES: tuple[SLObjective, ...] = (
    SLObjective(name="query_p99_latency", kind="latency",
                target=0.01, threshold_ms=100.0),
    SLObjective(name="query_degraded_ratio", kind="ratio", target=0.001),
)


def _latency_bad_fraction(aggregate: dict, objective: SLObjective
                          ) -> tuple[float, int]:
    hist = aggregate["histograms"].get(objective.histogram)
    if hist is None or hist["count"] <= 0:
        return 0.0, 0
    total = hist["count"]
    # Cumulative bucket pairs: (bound, observations <= bound).  Everything
    # above the first bound covering the threshold is over budget.
    at_or_under = 0
    for bound, cumulative in hist["buckets"]:
        if bound >= objective.threshold_ms:
            at_or_under = cumulative
            break
    else:
        at_or_under = hist["buckets"][-1][1] if hist["buckets"] else 0
    bad = total - at_or_under
    return bad / total, total


def _ratio_bad_fraction(aggregate: dict, objective: SLObjective
                        ) -> tuple[float, int]:
    total = aggregate["deltas"].get(objective.total_counter, 0.0)
    if total <= 0:
        return 0.0, 0
    bad = aggregate["deltas"].get(objective.bad_counter, 0.0)
    return bad / total, int(total)


class SLOTracker:
    """Evaluates declared objectives over a sampler's window ring."""

    def __init__(self, sampler, objectives=DEFAULT_OBJECTIVES,
                 metrics=None, events=None) -> None:
        self._sampler = sampler
        self.objectives = tuple(objectives)
        self._metrics = metrics
        self._events = events
        self._lock = threading.Lock()
        self._status: dict[str, dict] = {}
        self._burning: dict[str, bool] = {
            objective.name: False for objective in self.objectives
        }

    def _bad_fraction(self, objective: SLObjective, windows: int
                      ) -> tuple[float, int]:
        aggregate = self._sampler.aggregate(windows)
        if objective.kind == "latency":
            return _latency_bad_fraction(aggregate, objective)
        return _ratio_bad_fraction(aggregate, objective)

    def evaluate(self) -> dict:
        """Re-evaluate every objective; publishes gauges and burn events.

        Returns the per-objective status dict (also served by ``/slo``).
        """
        status: dict[str, dict] = {}
        for objective in self.objectives:
            fast_fraction, fast_n = self._bad_fraction(
                objective, objective.fast_windows)
            slow_fraction, slow_n = self._bad_fraction(
                objective, objective.slow_windows)
            fast_burn = fast_fraction / objective.target
            slow_burn = slow_fraction / objective.target
            burning = (fast_burn >= objective.burn_threshold
                       and slow_burn >= objective.burn_threshold
                       and fast_n > 0 and slow_n > 0)
            status[objective.name] = {
                "kind": objective.kind,
                "target": objective.target,
                "threshold_ms": objective.threshold_ms,
                "fast": {"windows": objective.fast_windows,
                         "samples": fast_n,
                         "bad_fraction": round(fast_fraction, 6),
                         "burn_rate": round(fast_burn, 4)},
                "slow": {"windows": objective.slow_windows,
                         "samples": slow_n,
                         "bad_fraction": round(slow_fraction, 6),
                         "burn_rate": round(slow_burn, 4)},
                "burning": burning,
            }
            if self._metrics is not None:
                self._metrics.set_gauge("slo.burn_rate", round(fast_burn, 4),
                                        slo=objective.name, window="fast")
                self._metrics.set_gauge("slo.burn_rate", round(slow_burn, 4),
                                        slo=objective.name, window="slow")
                self._metrics.set_gauge("slo.burning",
                                        1.0 if burning else 0.0,
                                        slo=objective.name)
        with self._lock:
            for objective in self.objectives:
                now_burning = status[objective.name]["burning"]
                was_burning = self._burning[objective.name]
                if now_burning and not was_burning and self._events is not None:
                    entry = status[objective.name]
                    self._events.emit(
                        "slo_burn",
                        slo=objective.name,
                        fast_burn=entry["fast"]["burn_rate"],
                        slow_burn=entry["slow"]["burn_rate"],
                        target=objective.target,
                    )
                self._burning[objective.name] = now_burning
            self._status = status
        return status

    @property
    def burning(self) -> bool:
        """Whether any objective is currently burning (health gating)."""
        with self._lock:
            return any(self._burning.values())

    def status(self) -> dict:
        """The most recent evaluation (empty before the first roll)."""
        with self._lock:
            return {"burning": any(self._burning.values()),
                    "objectives": dict(self._status)}
