"""Ring-buffered structured event log for engine lifecycle events.

Queries and updates are *metrics* (high-rate, aggregated); quarantines,
reopens, recoveries, checkpoints and fault escalations are *events* —
individually interesting, low-rate, and worth keeping verbatim.  The
:class:`EventLog` is a bounded deque of :class:`Event` records, each with a
monotonically increasing sequence number, a kind, an optional shard tag and
free-form fields.

Scoping: each :class:`~repro.core.index_router.IndexRouter` owns its own
:class:`EventLog` (capacity via ``REPRO_EVENT_LOG_CAP``), so concurrent
engines — and back-to-back tests — stop bleeding events into each other's
snapshots.  The router attaches itself as the ``event_sink`` of every shard
environment it manages, which routes checkpoint events to the owning engine.
A process-global default (:data:`EVENTS`) remains for the CLI and for
emission sites that run before any engine exists (recovery replay) or
outside one (fault-injector escalations).  The ring bound (512) keeps a
traced tier-1 run's memory flat.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ObservabilityError

_DEFAULT_CAPACITY = 512
_CAPACITY_ENV = "REPRO_EVENT_LOG_CAP"


def event_log_capacity_from_environ() -> int:
    """Ring capacity for engine-owned event logs (``REPRO_EVENT_LOG_CAP``)."""
    raw = os.environ.get(_CAPACITY_ENV, "").strip()
    if not raw:
        return _DEFAULT_CAPACITY
    try:
        capacity = int(raw)
    except ValueError as exc:
        raise ObservabilityError(
            f"{_CAPACITY_ENV} must be a positive integer, got {raw!r}"
        ) from exc
    if capacity <= 0:
        raise ObservabilityError(
            f"{_CAPACITY_ENV} must be a positive integer, got {raw!r}"
        )
    return capacity


@dataclass(frozen=True)
class Event:
    """One structured lifecycle event."""

    seq: int
    kind: str
    shard: "int | None"
    timestamp: float
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "shard": self.shard,
            "timestamp": round(self.timestamp, 6),
            **self.fields,
        }


class EventLog:
    """Thread-safe bounded event ring."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._entries: "deque[Event]" = deque(maxlen=capacity)
        self._seq = itertools.count(1)

    def emit(self, kind: str, shard: "int | None" = None, **fields: object) -> Event:
        event = Event(
            seq=next(self._seq),
            kind=kind,
            shard=shard,
            timestamp=time.time(),
            fields={key: value for key, value in fields.items()},
        )
        with self._lock:
            self._entries.append(event)
        return event

    def events(self, kind: "str | None" = None,
               shard: "int | None" = None) -> list[Event]:
        with self._lock:
            entries = list(self._entries)
        if kind is not None:
            entries = [event for event in entries if event.kind == kind]
        if shard is not None:
            entries = [event for event in entries if event.shard == shard]
        return entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide default log: the CLI's one-stream view, and the sink for
#: emission sites with no engine context (recovery, fault escalations).
EVENTS = EventLog()


def emit(kind: str, shard: "int | None" = None, **fields: object) -> Event:
    """Emit onto the process-wide log (the one-liner the storage layer uses)."""
    return EVENTS.emit(kind, shard=shard, **fields)
