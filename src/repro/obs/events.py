"""Ring-buffered structured event log for engine lifecycle events.

Queries and updates are *metrics* (high-rate, aggregated); quarantines,
reopens, recoveries, checkpoints and fault escalations are *events* —
individually interesting, low-rate, and worth keeping verbatim.  The
:class:`EventLog` is a bounded deque of :class:`Event` records, each with a
monotonically increasing sequence number, a kind, an optional shard tag and
free-form fields.

The log is process-global (:data:`EVENTS`): emission sites live deep in the
storage and fault layers where no router reference exists, and an operator
debugging a quarantine wants one stream, not one per engine instance.  The
ring bound (512) keeps a traced tier-1 run's memory flat.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

_DEFAULT_CAPACITY = 512


@dataclass(frozen=True)
class Event:
    """One structured lifecycle event."""

    seq: int
    kind: str
    shard: "int | None"
    timestamp: float
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "shard": self.shard,
            "timestamp": round(self.timestamp, 6),
            **self.fields,
        }


class EventLog:
    """Thread-safe bounded event ring."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._entries: "deque[Event]" = deque(maxlen=capacity)
        self._seq = itertools.count(1)

    def emit(self, kind: str, shard: "int | None" = None, **fields: object) -> Event:
        event = Event(
            seq=next(self._seq),
            kind=kind,
            shard=shard,
            timestamp=time.time(),
            fields={key: value for key, value in fields.items()},
        )
        with self._lock:
            self._entries.append(event)
        return event

    def events(self, kind: "str | None" = None,
               shard: "int | None" = None) -> list[Event]:
        with self._lock:
            entries = list(self._entries)
        if kind is not None:
            entries = [event for event in entries if event.kind == kind]
        if shard is not None:
            entries = [event for event in entries if event.shard == shard]
        return entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide event log every emission site writes to.
EVENTS = EventLog()


def emit(kind: str, shard: "int | None" = None, **fields: object) -> Event:
    """Emit onto the process-wide log (the one-liner the storage layer uses)."""
    return EVENTS.emit(kind, shard=shard, **fields)
