"""Query EXPLAIN / EXPLAIN ANALYZE: the planner's view, optionally with actuals.

:func:`explain_query` renders what the engine *would do* for a top-k query —
per-term owning shard, storage layout (blocked vs legacy vs clustered),
negotiated block codec, directory-served posting-count estimate, hot-term
cache status, pruning/seek eligibility — without executing it.  Every fact is
served from in-memory state or the buffer pool's accounting-free peek path
(see :meth:`InvertedIndex.describe_term_plan`), so a plain EXPLAIN performs
**zero accounted storage accesses**: fig7/table1 fingerprints cannot tell
whether a plan was ever described.

With ``analyze=True`` the query really runs — through the exact
:meth:`IndexRouter.query` path a caller would use, so the returned top-k is
bit-identical to a plain query — and the plan is grafted with actuals:
postings scanned vs estimated, blocks skipped with the heap-threshold floor
at each skip decision (the ``skip_events`` journal armed via
:func:`capture_query_analysis`), per-shard latency and pages/pool-hit
splits, and the plan/scan/merge phase breakdown read off the span tree.

The module doubles as a CLI::

    python -m repro.obs.explain --demo term1 term2 --analyze
    python -m repro.obs.explain --path /var/data/index alpha beta --format json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.obs.snapshot import to_json
from repro.obs.trace import set_tracing, span


def _term_plans(router, terms: list[str], conjunctive: bool) -> list[dict]:
    quarantined = set(router.quarantined_shards())
    plans = []
    for term in terms:
        plan = router.index.describe_term_plan(term)
        shard = router.shard_of_term(term)
        plan["shard"] = shard
        plan["quarantined"] = shard in quarantined
        plans.append(plan)
    return plans


def _engine_section(router, terms: list[str], conjunctive: bool) -> dict:
    index = router.index
    # Seeking only runs on the serial path: the parallel fan-out feeds
    # per-term scan plans to the stream pumps and never reaches the ID
    # method's conjunctive-seek override.
    seek_eligible = (
        hasattr(index, "_execute_conjunctive_seek")
        and index.block_seeking
        and conjunctive
        and len(terms) > 1
        and index.blocked_postings
        and not router.parallel
    )
    return {
        "method": router.method_name,
        "shards": router.shard_count,
        "threads": router.threads,
        "parallel": router.parallel,
        "deterministic": router.deterministic,
        "blocked_postings": index.blocked_postings,
        "block_max_pruning": index.block_max_pruning,
        "block_seeking": index.block_seeking,
        "pruning_eligible": (index.prunes_blocks and index.blocked_postings
                             and index.block_max_pruning),
        "seek_eligible": seek_eligible,
        "list_cache_enabled": index.list_cache is not None,
        "degraded": router.degraded,
        "quarantined_shards": list(router.quarantined_shards()),
    }


def _walk_spans(root) -> "list":
    nodes, out = [root], []
    while nodes:
        node = nodes.pop()
        out.append(node)
        nodes.extend(node.children)
    return out


def _run_analysis(router, keywords: list[str], k: int,
                  conjunctive: bool) -> dict:
    """Execute the query for real and distil the actuals from its traces.

    The execution path is exactly :meth:`IndexRouter.query` — same
    normalization already applied by the caller, same locks, same scans —
    so results and stats are bit-identical to an un-analyzed query.  The
    two observational hooks (tracing, the skip-decision journal) are
    invisible to storage accounting by contract.
    """
    from repro.core.indexes.base import capture_query_analysis

    previous = set_tracing(True)
    try:
        with capture_query_analysis():
            epoch = router.shard_snapshots()
            with span("explain.analyze") as root:
                started = time.perf_counter()
                response = router.query(keywords, k=k, conjunctive=conjunctive)
                elapsed_ms = (time.perf_counter() - started) * 1000.0
            deltas = router.shard_deltas(epoch)
    finally:
        set_tracing(previous)

    stats = response.stats
    phase_ms = {"plan_ms": None, "merge_ms": None, "scan_ms": None}
    shard_rows: "dict[int, dict]" = {}
    term_actuals = None
    for node in _walk_spans(root):
        if node.duration_ms is None:
            continue
        if node.name == "query.plan":
            phase_ms["plan_ms"] = (phase_ms["plan_ms"] or 0.0) + node.duration_ms
        elif node.name == "query.merge":
            phase_ms["merge_ms"] = (phase_ms["merge_ms"] or 0.0) + node.duration_ms
        elif node.name == "shard.scan":
            phase_ms["scan_ms"] = (phase_ms["scan_ms"] or 0.0) + node.duration_ms
            shard = node.tags.get("shard")
            if shard is not None:
                row = shard_rows.setdefault(int(shard), {"scan_ms": 0.0})
                row["scan_ms"] += node.duration_ms
        if term_actuals is None:
            term_actuals = node.tags.get("term_stats")
    for shard, delta in enumerate(deltas):
        row = shard_rows.setdefault(shard, {})
        row["pages_read"] = delta.page_reads
        row["pool_hits"] = delta.pool_hits
        row["cost_ms"] = round(delta.cost_ms(), 4)
    return {
        "latency_ms": round(elapsed_ms, 4),
        "results": [
            {"doc_id": result.doc_id, "score": result.score}
            for result in response.results
        ],
        "totals": {
            "postings_scanned": stats.postings_scanned,
            "blocks_skipped": stats.blocks_skipped,
            "chunks_scanned": stats.chunks_scanned,
            "pages_read": stats.pages_read,
            "pool_hits": stats.pool_hits,
            "estimated_io_ms": round(stats.estimated_io_ms, 4),
            "stopped_early": stats.stopped_early,
            "degraded": stats.degraded,
            "terms_skipped": stats.terms_skipped,
        },
        "phases": {
            key: (None if value is None else round(value, 4))
            for key, value in phase_ms.items()
        },
        # The serial engine shares one stats object across term scans, so
        # exact per-term actuals exist only where the fan-out tagged them.
        "per_term_actuals": "exact" if term_actuals else "aggregate-only",
        "term_stats": term_actuals,
        "skip_events": list(stats.skip_events or ()),
        "shards": [
            {"shard": shard, **{key: row.get(key) for key in
                                ("pages_read", "pool_hits", "cost_ms", "scan_ms")}}
            for shard, row in sorted(shard_rows.items())
        ],
        "trace": root.to_dict() if root is not None else None,
    }


def explain_query(engine, keywords: list[str], k: int = 10,
                  conjunctive: bool = True, analyze: bool = False) -> dict:
    """Structured plan (and, with ``analyze``, actuals) for one query.

    ``engine`` is an :class:`~repro.core.text_index.SVRTextIndex`;
    ``keywords`` are already analyzed/normalized terms (use
    :meth:`SVRTextIndex.explain` for raw query strings).  Raises the same
    :class:`~repro.errors.QueryError` a real query would on invalid input.
    """
    router = engine.router
    terms = router.index.prepare_query(keywords, k)
    plan = {
        "query": {
            "keywords": list(keywords),
            "terms": list(terms),
            "k": k,
            "conjunctive": conjunctive,
            "analyze": analyze,
        },
        "engine": _engine_section(router, terms, conjunctive),
        "terms": _term_plans(router, terms, conjunctive),
        "execution": None,
    }
    if analyze:
        plan["execution"] = _run_analysis(router, list(keywords), k,
                                          conjunctive)
        skips_by_term: "dict[str, list[dict]]" = {}
        for event in plan["execution"]["skip_events"]:
            skips_by_term.setdefault(event["term"], []).append(event)
        term_stats = plan["execution"]["term_stats"] or {}
        for term_plan in plan["terms"]:
            term = term_plan["term"]
            actual: dict = {"skip_events": skips_by_term.get(term, [])}
            if term in term_stats:
                actual.update(term_stats[term])
            term_plan["actual"] = actual
    return plan


# -- rendering -------------------------------------------------------------------


def _cache_note(cache: "dict | None") -> str:
    if cache is None:
        return "off"
    if cache["cached"]:
        return "hit"
    return "fillable" if cache["cacheable"] else "oversized"


def render_text(plan: dict) -> str:
    """Human-readable plan tree (the CLI's default output)."""
    query = plan["query"]
    engine = plan["engine"]
    mode = "ANALYZE" if query["analyze"] else "EXPLAIN"
    semantics = "AND" if query["conjunctive"] else "OR"
    lines = [
        f"{mode} {engine['method']} k={query['k']} {semantics} "
        f"terms={len(query['terms'])} shards={engine['shards']} "
        f"threads={engine['threads']}"
        + (" [degraded]" if engine["degraded"] else "")
    ]
    lines.append(
        "  engine: blocked_postings={blocked_postings} "
        "pruning={pruning_eligible} seeking={seek_eligible} "
        "cache={list_cache_enabled} parallel={parallel}".format(**engine)
    )
    for term_plan in plan["terms"]:
        parts = [
            f"  term {term_plan['term']!r} -> shard {term_plan['shard']}",
            f"layout={term_plan['layout']}",
        ]
        if term_plan["codec"] is not None:
            parts.append(f"codec={term_plan['codec']}")
        if term_plan["blocks"] is not None:
            parts.append(f"blocks={term_plan['blocks']}")
        if term_plan["estimated_postings"] is not None:
            parts.append(f"est_postings={term_plan['estimated_postings']}")
        if term_plan["segment_bytes"] is not None:
            parts.append(f"bytes={term_plan['segment_bytes']}")
        parts.append(f"cache={_cache_note(term_plan['cache'])}")
        if term_plan["quarantined"]:
            parts.append("QUARANTINED")
        lines.append(" ".join(parts))
        actual = term_plan.get("actual")
        if actual:
            detail = []
            if "postings_scanned" in actual:
                detail.append(f"postings={actual['postings_scanned']}")
                detail.append(f"blocks_skipped={actual['blocks_skipped']}")
            for event in actual["skip_events"]:
                floor = event["floor"]
                floor_note = "" if floor is None else f" floor={floor:.4g}"
                bound = event["bound"]
                bound_note = "" if bound is None else f" bound={bound:.4g}"
                detail.append(
                    f"{event['kind']}[{event['blocks']} blocks"
                    f"{floor_note}{bound_note}]"
                )
            if detail:
                lines.append("    actual: " + " ".join(detail))
    execution = plan["execution"]
    if execution is not None:
        totals = execution["totals"]
        estimated = sum(
            term_plan["estimated_postings"] or 0 for term_plan in plan["terms"]
        )
        lines.append(
            f"  actual: latency={execution['latency_ms']:.3f}ms "
            f"postings={totals['postings_scanned']} (est {estimated}) "
            f"blocks_skipped={totals['blocks_skipped']} "
            f"pages={totals['pages_read']} pool_hits={totals['pool_hits']}"
            + (" stopped_early" if totals["stopped_early"] else "")
        )
        phases = execution["phases"]
        phase_note = " ".join(
            f"{key[:-3]}={value:.3f}ms"
            for key, value in phases.items() if value is not None
        )
        if phase_note:
            lines.append(f"  phases: {phase_note}")
        for row in execution["shards"]:
            scan = row["scan_ms"]
            scan_note = "" if scan is None else f" scan={scan:.3f}ms"
            lines.append(
                f"  shard {row['shard']}: pages={row['pages_read']} "
                f"pool_hits={row['pool_hits']} io={row['cost_ms']}ms{scan_note}"
            )
        top = " ".join(
            f"{result['doc_id']}({result['score']:.4g})"
            for result in execution["results"][:10]
        )
        lines.append(f"  results: {top or '(none)'}")
    return "\n".join(lines) + "\n"


# -- CLI -------------------------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.explain",
        description="Explain (and optionally execute) a top-k query.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--demo", action="store_true",
                        help="build a small demo engine and explain against it")
    source.add_argument("--path", help="durable engine directory to inspect")
    parser.add_argument("keywords", nargs="*",
                        help="query keywords (default: two demo terms)")
    parser.add_argument("--k", type=int, default=10, help="top-k (default 10)")
    parser.add_argument("--or", dest="disjunctive", action="store_true",
                        help="OR semantics instead of AND")
    parser.add_argument("--analyze", action="store_true",
                        help="execute the query and graft actuals onto the plan")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)

    keywords = args.keywords
    if args.demo:
        from repro.obs.dump import _demo_engine

        engine = _demo_engine()
        if not keywords:
            keywords = ["term1", "term2"]
    else:
        if not keywords:
            parser.error("--path needs at least one keyword")
        from repro.core.text_index import SVRTextIndex

        engine = SVRTextIndex.open(args.path)
    try:
        plan = engine.explain(keywords, k=args.k,
                              conjunctive=not args.disjunctive,
                              analyze=args.analyze)
        if args.format == "json":
            sys.stdout.write(to_json(plan) + "\n")
        else:
            sys.stdout.write(render_text(plan))
    finally:
        if args.demo:
            engine.close()
        else:
            # Recovery opened the directory; tear down without committing.
            engine.crash()
    return 0


if __name__ == "__main__":
    sys.exit(main())
