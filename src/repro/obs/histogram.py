"""Percentiles and fixed-bucket latency histograms.

This module is the *single* percentile implementation in the repository:
:func:`percentile` is the exact nearest-rank estimator the service driver has
always used (re-exported from :mod:`repro.workloads.service` for
compatibility), and :class:`LatencyHistogram` is the streaming counterpart
the metrics registry aggregates into — fixed bucket bounds, O(1) memory,
quantiles estimated at bucket granularity.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.errors import ObservabilityError

#: Default latency bucket upper bounds in milliseconds.  Geometric-ish 1-2.5-5
#: decades from 50µs to 5s: fine enough to separate a cache hit from a page
#: miss at the bottom and a checkpoint stall from a quarantine storm at the
#: top, coarse enough that a histogram is 17 integers.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


def percentile(values: "Sequence[float]", fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]; 0.0 for no samples)."""
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ObservabilityError(
            f"percentile fraction must be in [0, 1], got {fraction}"
        )
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class LatencyHistogram:
    """Fixed-bucket streaming histogram with cumulative-bucket quantiles.

    ``bounds`` are inclusive upper bounds per bucket; one overflow bucket
    catches everything past the last bound.  Exact ``count``/``sum``/``min``/
    ``max`` ride along, so the mean and the extremes are precise even though
    quantiles are bucket-granular (a quantile reports its bucket's upper
    bound, clamped to the observed maximum).
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: "Sequence[float]" = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                "histogram bounds must be a non-empty ascending sequence"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value

    def merge(self, other: "LatencyHistogram") -> None:
        if other.bounds != self.bounds:
            raise ObservabilityError("cannot merge histograms with different bounds")
        if other.count == 0:
            return
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        if self.count == 0 or other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.count += other.count
        self.total += other.total

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Bucket-granular nearest-rank quantile (0.0 for no samples)."""
        if not 0.0 <= fraction <= 1.0:
            raise ObservabilityError(
                f"quantile fraction must be in [0, 1], got {fraction}"
            )
        if self.count == 0:
            return 0.0
        rank = round(fraction * (self.count - 1))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen > rank:
                if index == len(self.bounds):  # overflow bucket
                    return self.max
                return min(self.bounds[index], self.max)
        return self.max

    def snapshot(self) -> dict:
        """Plain-data form for exporters (cumulative Prometheus-style buckets)."""
        cumulative = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            cumulative.append((bound, running))
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "mean": round(self.mean, 6),
            "p50": round(self.quantile(0.50), 6),
            "p95": round(self.quantile(0.95), 6),
            "p99": round(self.quantile(0.99), 6),
            "p999": round(self.quantile(0.999), 6),
            "buckets": cumulative,
        }
