"""Rolling time-series over the metrics registry: ring-buffered windows.

The registry's counters and histograms are *cumulative* — perfect for
lifetime totals, useless for "p99 over the last minute".  A
:class:`MetricsSampler` turns them into fixed-width windows: every
``window_s`` seconds it snapshots the registry, diffs against the previous
snapshot, and appends one window to a bounded ring.  Counter deltas become
rates; histogram bucket-array deltas become *windowed* p50/p95/p99 via the
same nearest-rank walk the live histograms use; gauges are recorded as-is.

The sampler is **pull-driven by default**: the router calls :meth:`tick`
on its query/update paths, which is one clock read and one comparison until
a window boundary passes — no background thread, no work on an idle engine.
Setting ``REPRO_OBS_SAMPLE_MS`` opts into a daemon thread
(:class:`SamplerDaemon`) that rolls windows on a fixed cadence even when no
traffic arrives, which is what a live ``/metrics``-scraping deployment
wants.  Either way a roll only reads existing counters: sampling performs
zero accounted storage accesses.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import deque

from repro.errors import ObservabilityError

_SAMPLE_ENV = "REPRO_OBS_SAMPLE_MS"

#: Default window width (seconds) and ring capacity: two minutes of
#: one-second windows, enough to cover the SLO tracker's slow burn window.
DEFAULT_WINDOW_S = 1.0
DEFAULT_CAPACITY = 120


def sample_interval_from_environ() -> "float | None":
    """Daemon sampling interval in seconds (``REPRO_OBS_SAMPLE_MS``).

    ``None`` when unset: the sampler stays pull-driven (router ticks only).
    """
    raw = os.environ.get(_SAMPLE_ENV, "").strip()
    if not raw:
        return None
    try:
        millis = float(raw)
    except ValueError as exc:
        raise ObservabilityError(
            f"{_SAMPLE_ENV} must be a positive number of milliseconds, "
            f"got {raw!r}"
        ) from exc
    if millis <= 0:
        raise ObservabilityError(
            f"{_SAMPLE_ENV} must be a positive number of milliseconds, "
            f"got {raw!r}"
        )
    return millis / 1000.0


def _windowed_quantile(buckets, count: int, fraction: float,
                       clamp: "float | None") -> float:
    """Nearest-rank quantile over a window's cumulative bucket deltas.

    Mirrors :meth:`LatencyHistogram.quantile`; ``clamp`` is the lifetime max
    (the window's own max is not recoverable from bucket deltas, so the
    lifetime max bounds the overflow bucket's answer).
    """
    if count <= 0:
        return 0.0
    rank = max(1, math.ceil(fraction * count))
    for bound, cumulative in buckets:
        if cumulative >= rank:
            return min(bound, clamp) if clamp is not None else bound
    return clamp if clamp is not None else buckets[-1][0] if buckets else 0.0


def _diff_histogram(previous: "dict | None", current: dict,
                    duration_s: float) -> "dict | None":
    """One histogram series' windowed view from two cumulative snapshots."""
    if previous is None:
        prev_count, prev_sum = 0, 0.0
        prev_buckets = [(bound, 0) for bound, _cum in current["buckets"]]
    else:
        prev_count, prev_sum = previous["count"], previous["sum"]
        prev_buckets = previous["buckets"]
    count = current["count"] - prev_count
    if count <= 0:
        return None
    total = current["sum"] - prev_sum
    buckets = [
        (bound, cumulative - prev_cumulative)
        for (bound, cumulative), (_b, prev_cumulative)
        in zip(current["buckets"], prev_buckets)
    ]
    clamp = current["max"]
    return {
        "count": count,
        "sum": round(total, 6),
        "mean": round(total / count, 6),
        "rate": round(count / duration_s, 6) if duration_s > 0 else 0.0,
        "p50": _windowed_quantile(buckets, count, 0.50, clamp),
        "p95": _windowed_quantile(buckets, count, 0.95, clamp),
        "p99": _windowed_quantile(buckets, count, 0.99, clamp),
        "buckets": buckets,
    }


class MetricsSampler:
    """Ring-buffered fixed-width windows sampled from a registry.

    ``tick()`` is the hot-path entry: O(1) until ``window_s`` has elapsed
    since the last roll, then one registry sweep produces the next window.
    """

    def __init__(self, registry, window_s: float = DEFAULT_WINDOW_S,
                 capacity: int = DEFAULT_CAPACITY,
                 clock=time.monotonic) -> None:
        if window_s <= 0:
            raise ObservabilityError(
                f"window_s must be positive, got {window_s!r}"
            )
        if capacity <= 0:
            raise ObservabilityError(
                f"capacity must be positive, got {capacity!r}"
            )
        self._registry = registry
        self.window_s = window_s
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._windows: "deque[dict]" = deque(maxlen=capacity)
        baseline_time = clock()
        self._last_sample = self._take()
        self._last_time = baseline_time
        #: Next roll boundary; read unlocked on the hot path (a benign race:
        #: two racing ticks both enter ``_roll``, which re-checks under lock).
        self._next_roll = baseline_time + window_s

    # -- sampling ---------------------------------------------------------------

    def _take(self) -> dict:
        """One cumulative sample of every registry series (counter reads only)."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for kind, rendered, _name, _labels, value in self._registry.series():
            if kind == "counter":
                counters[rendered] = value
            elif kind == "gauge":
                gauges[rendered] = value
            else:
                histograms[rendered] = value
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def tick(self) -> "dict | None":
        """Advance time; roll and return a new window when one is due."""
        if self._clock() < self._next_roll:
            return None
        return self.roll()

    def roll(self) -> "dict | None":
        """Force a window roll (daemon cadence, tests, endpoint refresh)."""
        with self._lock:
            now = self._clock()
            duration = now - self._last_time
            if duration <= 0:
                return None
            sample = self._take()
            window = self._diff(self._last_sample, sample, duration)
            self._last_sample = sample
            self._last_time = now
            self._next_roll = now + self.window_s
            self._windows.append(window)
            return window

    def _diff(self, previous: dict, current: dict, duration_s: float) -> dict:
        deltas = {}
        rates = {}
        for rendered, value in current["counters"].items():
            delta = value - previous["counters"].get(rendered, 0.0)
            if delta:
                deltas[rendered] = delta
                rates[rendered] = round(delta / duration_s, 6)
        histograms = {}
        for rendered, snap in current["histograms"].items():
            windowed = _diff_histogram(
                previous["histograms"].get(rendered), snap, duration_s
            )
            if windowed is not None:
                histograms[rendered] = windowed
        return {
            "t": time.time(),
            "duration_s": round(duration_s, 6),
            "deltas": deltas,
            "rates": rates,
            "gauges": dict(current["gauges"]),
            "histograms": histograms,
        }

    # -- reading ----------------------------------------------------------------

    def windows(self, last: "int | None" = None) -> list[dict]:
        """The most recent windows, oldest first."""
        with self._lock:
            entries = list(self._windows)
        if last is not None:
            entries = entries[-last:]
        return entries

    def latest(self) -> "dict | None":
        with self._lock:
            return self._windows[-1] if self._windows else None

    def aggregate(self, last: int) -> dict:
        """Sum the most recent ``last`` windows into one wider window.

        Counter deltas and histogram bucket counts are additive, so the
        aggregate is exact — this is what burn-rate evaluation reads.
        """
        entries = self.windows(last=last)
        duration = sum(window["duration_s"] for window in entries)
        deltas: dict = {}
        hist_counts: dict = {}
        hist_sums: dict = {}
        hist_buckets: dict = {}
        for window in entries:
            for rendered, delta in window["deltas"].items():
                deltas[rendered] = deltas.get(rendered, 0.0) + delta
            for rendered, hist in window["histograms"].items():
                hist_counts[rendered] = hist_counts.get(rendered, 0) + hist["count"]
                hist_sums[rendered] = hist_sums.get(rendered, 0.0) + hist["sum"]
                merged = hist_buckets.get(rendered)
                if merged is None:
                    hist_buckets[rendered] = [list(pair) for pair in hist["buckets"]]
                else:
                    for slot, (_bound, cumulative) in zip(merged, hist["buckets"]):
                        slot[1] += cumulative
        histograms = {
            rendered: {
                "count": hist_counts[rendered],
                "sum": hist_sums[rendered],
                "buckets": [tuple(pair) for pair in hist_buckets[rendered]],
            }
            for rendered in hist_counts
        }
        return {
            "windows": len(entries),
            "duration_s": round(duration, 6),
            "deltas": deltas,
            "histograms": histograms,
        }

    def snapshot(self) -> dict:
        """JSON-ready view: configuration plus the ring, oldest first.

        Per-window histogram bucket arrays are dropped (they are an internal
        detail for burn-rate math; quantiles are already materialized).
        """
        windows = [
            {
                **{key: value for key, value in window.items()
                   if key != "histograms"},
                "histograms": {
                    rendered: {key: value for key, value in hist.items()
                               if key != "buckets"}
                    for rendered, hist in window["histograms"].items()
                },
            }
            for window in self.windows()
        ]
        return {
            "window_s": self.window_s,
            "capacity": self.capacity,
            "windows": windows,
        }


class SamplerDaemon(threading.Thread):
    """Optional fixed-cadence roller (``REPRO_OBS_SAMPLE_MS`` opt-in).

    Calls ``on_sample`` every ``interval_s`` seconds until :meth:`stop`.
    The callback is the router's observability tick (roll + SLO evaluation +
    gauge publication) — all counter reads, so the daemon can never perturb
    an I/O fingerprint.
    """

    def __init__(self, interval_s: float, on_sample) -> None:
        super().__init__(name="repro-obs-sampler", daemon=True)
        self._interval_s = interval_s
        self._on_sample = on_sample
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval_s):
            try:
                self._on_sample()
            except Exception:
                # A dying engine (mid-close) must not take the daemon down
                # with a spurious traceback; the next wait re-checks halt.
                if self._halt.is_set():
                    return

    def stop(self) -> None:
        self._halt.set()
        if self.is_alive():
            self.join(timeout=2.0)
