"""Live monitoring endpoint: a stdlib HTTP server over one engine's state.

Opt-in only — nothing listens unless :func:`serve_observability` is called
(or ``REPRO_OBS_HTTP_PORT`` is set, which makes :class:`SVRTextIndex` start
one automatically and stop it on ``close()``/``crash()``).  The server is a
daemon-threaded :class:`~http.server.ThreadingHTTPServer` bound to loopback
by default; it has no authentication, so bind it to anything wider only
behind a trusted proxy.

Routes (all ``GET``):

``/metrics``
    The registry in Prometheus text exposition format (scrape target).
``/snapshot``
    The full :func:`~repro.obs.snapshot.observability_snapshot` as JSON.
``/slo``
    The SLO tracker's latest per-objective burn-rate status.
``/healthz``
    ``200 {"status": "ok"}`` on a healthy engine; ``503`` with the reasons
    when shards are quarantined or any SLO is burning.
``/slow``
    The slow-query log entries (span trees included).

Every handler reads counters and ring buffers only — serving a scrape
performs zero accounted storage accesses, so a monitored experiment keeps
its I/O fingerprints.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ObservabilityError
from repro.obs.snapshot import observability_snapshot, to_prometheus_text
from repro.obs.trace import SLOW_QUERIES

_PORT_ENV = "REPRO_OBS_HTTP_PORT"


def http_port_from_environ() -> "int | None":
    """``REPRO_OBS_HTTP_PORT`` as an int port (``None`` when unset).

    ``0`` asks the OS for an ephemeral port (the handle's ``port`` attribute
    reports the bound one).
    """
    raw = os.environ.get(_PORT_ENV, "").strip()
    if not raw:
        return None
    try:
        port = int(raw)
    except ValueError as exc:
        raise ObservabilityError(
            f"{_PORT_ENV} must be a TCP port number, got {raw!r}"
        ) from exc
    if not 0 <= port <= 65535:
        raise ObservabilityError(
            f"{_PORT_ENV} must be in [0, 65535], got {port}"
        )
    return port


class ObservabilityServer:
    """One engine's monitoring endpoint; ``close()`` joins the thread."""

    def __init__(self, engine, host: str = "127.0.0.1", port: int = 0) -> None:
        self._engine = engine
        handler = _make_handler(engine)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-obs-http", daemon=True
        )
        self._thread.start()
        self._closed = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving and join the listener thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "ObservabilityServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _health(engine) -> "tuple[int, dict]":
    router = engine.router
    reasons = []
    quarantined = router.quarantined_shards()
    if quarantined:
        reasons.append(f"quarantined shards: {list(quarantined)}")
    slo = getattr(router, "slo", None)
    if slo is not None and slo.burning:
        burning = [
            name for name, entry in slo.status()["objectives"].items()
            if entry["burning"]
        ]
        reasons.append(f"SLOs burning: {burning}")
    if reasons:
        return 503, {"status": "degraded", "reasons": reasons}
    return 200, {"status": "ok"}


def _make_handler(engine):
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-obs/1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # scrapes must not spam stderr

        def _send(self, status: int, content_type: str, body: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(self, status: int, obj) -> None:
            self._send(status, "application/json",
                       json.dumps(obj, indent=2, default=str) + "\n")

        def do_GET(self) -> None:  # noqa: N802 - stdlib signature
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/metrics":
                    self._send(200, "text/plain; version=0.0.4",
                               to_prometheus_text(engine))
                elif path == "/snapshot":
                    self._send_json(200, observability_snapshot(engine))
                elif path == "/slo":
                    slo = getattr(engine.router, "slo", None)
                    self._send_json(200, {} if slo is None else slo.status())
                elif path == "/healthz":
                    status, body = _health(engine)
                    self._send_json(status, body)
                elif path == "/slow":
                    self._send_json(200, SLOW_QUERIES.entries())
                else:
                    self._send_json(404, {
                        "error": f"unknown path {path!r}",
                        "paths": ["/metrics", "/snapshot", "/slo",
                                  "/healthz", "/slow"],
                    })
            except BrokenPipeError:
                pass
            except Exception as exc:  # surface, don't kill the listener
                try:
                    self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
                except OSError:
                    pass

    return Handler


def serve_observability(engine, port: int = 0,
                        host: str = "127.0.0.1") -> ObservabilityServer:
    """Start a monitoring endpoint for ``engine``; returns the handle.

    ``port=0`` binds an ephemeral port (read it off ``handle.port``).  The
    caller owns the handle: ``handle.close()`` stops the listener —
    :class:`SVRTextIndex` does this from ``close()``/``crash()`` when the
    server came from ``REPRO_OBS_HTTP_PORT``.
    """
    return ObservabilityServer(engine, host=host, port=port)
