"""Introspection CLI: dump an engine's observability snapshot.

Usage::

    python -m repro.obs.dump --demo [--format json|prom|text]
    python -m repro.obs.dump --path /var/data/index [--format json]

``--demo`` builds a small in-memory engine, runs a few hundred traced
queries and updates, and dumps the resulting snapshot — the quickest way to
see what the observability layer reports.  ``--path`` recovers a durable
engine directory read-only-in-spirit: the snapshot is taken straight after
recovery and the engine is torn down with ``crash()`` (no commit), so the
directory's durable state is left exactly as found.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.obs.snapshot import observability_snapshot, to_json, to_prometheus_text
from repro.obs.trace import SLOW_QUERIES, set_tracing


def _demo_engine():
    from repro.core.text_index import SVRTextIndex

    rng = random.Random(1234)
    vocabulary = [f"term{i}" for i in range(40)]
    engine = SVRTextIndex(method="chunk", cache_pages=256, shards=4, threads=1)
    for doc_id in range(1, 201):
        terms = rng.sample(vocabulary, rng.randint(3, 8))
        engine.add_document_terms(doc_id, terms, score=rng.random())
    engine.finalize()
    previous = set_tracing(True)
    try:
        for _ in range(200):
            keywords = rng.sample(vocabulary, 2)
            engine.search(keywords, k=10, conjunctive=False)
        engine.apply_score_updates(
            [(rng.randint(1, 200), rng.random()) for _ in range(64)]
        )
    finally:
        set_tracing(previous)
    return engine


def _render_text(snapshot: dict) -> str:
    lines = []
    engine = snapshot["engine"]
    lines.append(
        "engine: method={method} shards={shards} threads={threads} "
        "durable={durable} tracing={tracing} degraded={degraded}".format(**engine)
    )
    lines.append("")
    lines.append("counters:")
    for name, value in snapshot["metrics"]["counters"].items():
        lines.append(f"  {name} = {value:g}")
    lines.append("histograms:")
    for name, hist in snapshot["metrics"]["histograms"].items():
        lines.append(
            f"  {name}: count={hist['count']} mean={hist['mean']:.3f} "
            f"p50={hist['p50']:.3f} p95={hist['p95']:.3f} "
            f"p99={hist['p99']:.3f} max={hist['max']:.3f}"
        )
    lines.append("shard I/O (lifetime):")
    for row in snapshot["shard_io"]:
        tag = "-" if row["shard"] is None else row["shard"]
        lines.append(
            f"  shard {tag}: reads={row['disk']['reads']} "
            f"writes={row['disk']['writes']} pool_hits={row['pool']['hits']} "
            f"pool_misses={row['pool']['misses']}"
        )
    if snapshot["list_cache"] is not None:
        cache = snapshot["list_cache"]
        lines.append(
            f"list cache: {cache['entries']} entries, "
            f"{cache['used_bytes']}/{cache['budget_bytes']} bytes, "
            f"hits={cache['hits']} misses={cache['misses']}"
        )
    if snapshot["events"]:
        lines.append("events:")
        for event in snapshot["events"][-20:]:
            shard = "" if event["shard"] is None else f" shard={event['shard']}"
            detail = " ".join(
                f"{key}={value}" for key, value in event.items()
                if key not in ("seq", "kind", "shard", "timestamp")
            )
            lines.append(f"  #{event['seq']} {event['kind']}{shard} {detail}")
    if snapshot["slow_queries"]:
        lines.append("slow queries:")
        for entry in snapshot["slow_queries"]:
            lines.append(
                f"  {entry['duration_ms']:.1f}ms keywords={entry['keywords']}"
            )
    return "\n".join(lines) + "\n"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dump",
        description="Dump an engine's observability snapshot.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--demo", action="store_true",
                        help="build a small demo engine and dump it")
    source.add_argument("--path", help="durable engine directory to inspect")
    parser.add_argument("--format", choices=("json", "prom", "text"),
                        default="text", help="output format (default: text)")
    parser.add_argument("--slow-query-trees", action="store_true",
                        help="include full span trees for recorded slow queries")
    args = parser.parse_args(argv)

    if args.demo:
        engine = _demo_engine()
    else:
        from repro.core.text_index import SVRTextIndex

        engine = SVRTextIndex.open(args.path)
    try:
        snapshot = observability_snapshot(engine)
        if not args.slow_query_trees:
            snapshot["slow_queries"] = [
                {key: value for key, value in entry.items() if key != "tree"}
                for entry in snapshot["slow_queries"]
            ]
        if args.format == "json":
            sys.stdout.write(to_json(snapshot) + "\n")
        elif args.format == "prom":
            sys.stdout.write(to_prometheus_text(engine))
        else:
            sys.stdout.write(_render_text(snapshot))
    finally:
        if args.demo:
            engine.close()
        else:
            # Recovery opened the directory; crash() tears the process state
            # down without committing, leaving the durable files untouched.
            engine.crash()
        SLOW_QUERIES.clear()
    return 0


if __name__ == "__main__":
    sys.exit(main())
