"""Span-tree tracing with executor propagation and a slow-query log.

A *span* is one timed region of a query or write window (``query.plan``,
``shard.scan``, ``wal.commit`` …) with free-form tags.  Spans form a tree via
a thread-local "current span": :func:`span` opens a child of whatever is
current on the calling thread, and :func:`bind_current` captures the caller's
current span into a closure so a task submitted to the executor pool (or
stolen by a waiting thread — the closure travels with the task) records its
spans under the submitting query's tree, whichever thread runs it.

Tracing is **off by default** and enabled with ``REPRO_TRACE=1`` (or
:func:`set_tracing` in tests).  When off, :func:`span` yields ``None``
without allocating and :func:`bind_current` returns its argument — the whole
module costs one global read per instrumentation site.

Invisibility contract: spans record wall-clock and caller-provided tags only.
Nothing here reads a page, so enabling tracing cannot change a single I/O
accounting counter (pinned by ``tests/obs/test_invisibility.py``).

The :class:`SlowQueryLog` keeps the last N span trees whose root exceeded
``REPRO_SLOW_QUERY_MS`` (default 100 ms) together with per-term page/block
attribution supplied by the router.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping

from repro.errors import ObservabilityError

_TRACE_ENV = "REPRO_TRACE"
_SLOW_ENV = "REPRO_SLOW_QUERY_MS"

_DISABLED_VALUES = {"", "0", "false", "no", "off"}


def tracing_from_environ() -> bool:
    """Whether ``REPRO_TRACE`` asks for tracing (unset/0/false = off)."""
    return os.environ.get(_TRACE_ENV, "").strip().lower() not in _DISABLED_VALUES


def slow_query_threshold_from_environ() -> float:
    """``REPRO_SLOW_QUERY_MS`` as a float (default 100.0 ms)."""
    raw = os.environ.get(_SLOW_ENV, "").strip()
    if not raw:
        return 100.0
    try:
        value = float(raw)
    except ValueError:
        raise ObservabilityError(
            f"{_SLOW_ENV} must be a number of milliseconds, got {raw!r}"
        ) from None
    if value < 0:
        raise ObservabilityError(f"{_SLOW_ENV} must be >= 0, got {value}")
    return value


_enabled = tracing_from_environ()
_state = threading.local()


def tracing_enabled() -> bool:
    return _enabled


def set_tracing(enabled: bool) -> bool:
    """Force tracing on/off (tests and the dump CLI); returns the old value."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


class Span:
    """One timed node of a trace tree."""

    __slots__ = ("name", "tags", "children", "_started", "duration_ms")

    def __init__(self, name: str, tags: "dict[str, object] | None" = None) -> None:
        self.name = name
        self.tags = tags or {}
        #: Appended concurrently by shard workers; list.append is atomic.
        self.children: list[Span] = []
        self._started = time.perf_counter()
        self.duration_ms: "float | None" = None

    def close(self) -> None:
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self._started) * 1000.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4) if self.duration_ms is not None else None,
            "tags": dict(self.tags),
            "children": [child.to_dict() for child in self.children],
        }

    def tree_lines(self, indent: int = 0) -> list[str]:
        duration = f"{self.duration_ms:.3f}ms" if self.duration_ms is not None else "open"
        tags = "".join(f" {key}={value}" for key, value in self.tags.items())
        lines = [f"{'  ' * indent}{self.name} {duration}{tags}"]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines

    def format_tree(self) -> str:
        return "\n".join(self.tree_lines())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, duration_ms={self.duration_ms}, children={len(self.children)})"


def current_span() -> "Span | None":
    """The span currently open on this thread (None when untraced)."""
    return getattr(_state, "span", None)


@contextmanager
def span(name: str, **tags: object) -> "Iterator[Span | None]":
    """Open a child span of this thread's current span (no-op when disabled)."""
    if not _enabled:
        yield None
        return
    parent = getattr(_state, "span", None)
    node = Span(name, tags if tags else None)
    if parent is not None:
        parent.children.append(node)
    _state.span = node
    try:
        yield node
    finally:
        node.close()
        _state.span = parent


def bind_current(fn: Callable) -> Callable:
    """Bind the caller's current span into ``fn`` for cross-thread execution.

    The wrapper installs the captured span as the running thread's current
    span for the duration of the call (restoring whatever was there), so
    spans the task opens land under the submitting query's tree.  Because
    the binding lives in the returned closure, it holds on *any* executing
    thread — a shard executor worker or a caller that work-steals the task.
    """
    if not _enabled:
        return fn
    parent = getattr(_state, "span", None)
    if parent is None:
        return fn

    def bound(*args, **kwargs):
        previous = getattr(_state, "span", None)
        _state.span = parent
        try:
            return fn(*args, **kwargs)
        finally:
            _state.span = previous

    return bound


class SlowQueryLog:
    """Ring buffer of the slowest-query span trees with per-term attribution."""

    def __init__(self, capacity: int = 64,
                 threshold_ms: "float | None" = None) -> None:
        self._lock = threading.Lock()
        self._entries: deque = deque(maxlen=capacity)
        self.threshold_ms = (slow_query_threshold_from_environ()
                             if threshold_ms is None else float(threshold_ms))

    def maybe_record(self, root: Span,
                     keywords: "tuple[str, ...] | list[str]" = (),
                     attribution: "Mapping[str, Mapping[str, int]] | None" = None,
                     ) -> "dict | None":
        """Record ``root`` when it ran longer than the threshold.

        ``attribution`` maps term -> ``{"pages_read": ..., "blocks_skipped":
        ...}`` (the router's per-term stats merge).  Returns the recorded
        entry, or None when the query was fast enough.
        """
        if root.duration_ms is None or root.duration_ms < self.threshold_ms:
            return None
        entry = {
            "duration_ms": round(root.duration_ms, 4),
            "keywords": list(keywords),
            "terms": {term: dict(stats) for term, stats in (attribution or {}).items()},
            "tree": root.to_dict(),
        }
        with self._lock:
            self._entries.append(entry)
        return entry

    def entries(self) -> list[dict]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide slow-query log (per-router logs would fragment the one place
#: an operator looks; entries carry enough tags to tell engines apart).
SLOW_QUERIES = SlowQueryLog()
