"""Thread-safe metrics registry: counters, gauges, latency histograms.

One :class:`MetricsRegistry` lives on each :class:`~repro.core.index_router.
IndexRouter` and is shared by everything in that engine instance — the router
itself, the executor pool, the hot-term list cache, and the bench/workload
exporters.  All mutation goes through one lock, which is what makes the
per-shard aggregation of racy per-query counters (``blocks_skipped``,
cache hits) exact rather than best-effort.

Metric names are dotted strings (``query.count``, ``shard.pages_read``);
labels are keyword arguments canonicalised into a sorted tuple, so
``shard=3`` always lands on the same series.  The registry never touches
storage — feeding it is always reading an *existing* counter or a clock.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from repro.obs.histogram import DEFAULT_LATENCY_BUCKETS_MS, LatencyHistogram

_LabelKey = tuple[tuple[str, object], ...]


def _labels_key(labels: Mapping[str, object]) -> _LabelKey:
    return tuple(sorted(labels.items()))


def render_series(name: str, labels: _LabelKey) -> str:
    """Human/JSON-facing series name: ``shard.pages_read{shard=3}``."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Counters, gauges and latency histograms behind one lock."""

    def __init__(self,
                 histogram_bounds: "Iterable[float]" = DEFAULT_LATENCY_BUCKETS_MS,
                 ) -> None:
        self._lock = threading.Lock()
        self._bounds = tuple(histogram_bounds)
        self._counters: dict[tuple[str, _LabelKey], float] = {}
        self._gauges: dict[tuple[str, _LabelKey], float] = {}
        self._histograms: dict[tuple[str, _LabelKey], LatencyHistogram] = {}

    # -- writers ---------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        key = (name, _labels_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def add_many(self, values: Mapping[str, float], **labels: object) -> None:
        """Add several counters under one lock round trip (the hot path)."""
        label_key = _labels_key(labels)
        with self._lock:
            counters = self._counters
            for name, value in values.items():
                key = (name, label_key)
                counters[key] = counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        with self._lock:
            self._gauges[(name, _labels_key(labels))] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        key = (name, _labels_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = LatencyHistogram(self._bounds)
            histogram.observe(value)

    # -- readers ---------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._counters.get((name, _labels_key(labels)), 0.0)

    def gauge_value(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._gauges.get((name, _labels_key(labels)), 0.0)

    def histogram(self, name: str, **labels: object) -> "LatencyHistogram | None":
        with self._lock:
            return self._histograms.get((name, _labels_key(labels)))

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> dict:
        """Plain-data copy: ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``.

        Series names are rendered (labels inline); values are plain floats /
        histogram snapshots, so the result is JSON-serialisable as-is.
        """
        with self._lock:
            counters = {render_series(name, labels): value
                        for (name, labels), value in self._counters.items()}
            gauges = {render_series(name, labels): value
                      for (name, labels), value in self._gauges.items()}
            histograms = {render_series(name, labels): hist.snapshot()
                          for (name, labels), hist in self._histograms.items()}
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def series(self) -> "list[tuple[str, str, str, _LabelKey, object]]":
        """Typed series listing for the Prometheus exporter.

        Yields ``(kind, rendered, name, labels, value)`` with ``kind`` one of
        ``counter``/``gauge``/``histogram``.
        """
        def ordered(table):  # label values may mix types; sort on rendered text
            return sorted(table.items(),
                          key=lambda item: render_series(item[0][0], item[0][1]))

        out: list[tuple[str, str, str, _LabelKey, object]] = []
        with self._lock:
            for (name, labels), value in ordered(self._counters):
                out.append(("counter", render_series(name, labels), name, labels, value))
            for (name, labels), value in ordered(self._gauges):
                out.append(("gauge", render_series(name, labels), name, labels, value))
            for (name, labels), hist in ordered(self._histograms):
                out.append(("histogram", render_series(name, labels), name, labels,
                            hist.snapshot()))
        return out
