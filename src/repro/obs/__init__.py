"""Unified observability layer: tracing, metrics, events, exporters.

The engine's telemetry used to be fragmented — ``QueryStats`` per query,
``ShardLoad`` per run, fault counters per injector, buffer-pool stats per
shard — each with its own dialect.  This package is the shared substrate:

* :mod:`repro.obs.trace` — per-query / per-window span trees propagated
  through the executor pool into worker threads, plus a slow-query log;
* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges and
  fixed-bucket latency histograms fed by the router, executors, caches, the
  WAL and the retry/quarantine paths;
* :mod:`repro.obs.events` — a ring-buffered structured event log for
  lifecycle events (quarantine, reopen, recovery, checkpoint, escalation),
  router-owned per engine with a process-global fallback;
* :mod:`repro.obs.histogram` — the one percentile/histogram implementation
  every consumer (service driver, bench reporting, registry) shares;
* :mod:`repro.obs.timeseries` / :mod:`repro.obs.slo` — ring-buffered rolling
  windows over the registry (counter deltas → rates, histogram deltas →
  windowed p50/p95/p99) and multiwindow SLO burn-rate tracking on top;
* :mod:`repro.obs.explain` — query EXPLAIN / EXPLAIN ANALYZE: the per-term
  plan from the accounting-free peek path, optionally grafted with actuals
  (``python -m repro.obs.explain`` CLI);
* :mod:`repro.obs.snapshot` / :mod:`repro.obs.dump` — JSON and
  Prometheus-style exporters and the ``python -m repro.obs.dump`` CLI;
* :mod:`repro.obs.http` / :mod:`repro.obs.top` — the opt-in live monitoring
  endpoint (``/metrics``, ``/snapshot``, ``/slo``, ``/healthz``, ``/slow``)
  and the polling terminal dashboard.

Two invariants the test suite pins:

* **Accounting invisibility** — nothing in this package performs a storage
  access.  Spans and metrics record wall-clock and *existing* counter values,
  plans are described through peek reads, so fig7/table1 I/O fingerprints are
  bit-identical with tracing, sampling or EXPLAIN enabled.
* **Near-free when disabled** — every instrumentation site is a no-op branch
  when ``REPRO_TRACE`` is unset (spans) or collapses to one dict update per
  operation (metrics); the ``obs_overhead`` bench keeps the macro-query
  overhead within 5%.
"""

from repro.obs.events import (
    Event,
    EventLog,
    EVENTS,
    emit,
    event_log_capacity_from_environ,
)
from repro.obs.histogram import (
    DEFAULT_LATENCY_BUCKETS_MS,
    LatencyHistogram,
    percentile,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import DEFAULT_OBJECTIVES, SLObjective, SLOTracker
from repro.obs.timeseries import (
    MetricsSampler,
    SamplerDaemon,
    sample_interval_from_environ,
)
from repro.obs.trace import (
    SLOW_QUERIES,
    SlowQueryLog,
    Span,
    bind_current,
    current_span,
    set_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_OBJECTIVES",
    "EVENTS",
    "Event",
    "EventLog",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsSampler",
    "SLOW_QUERIES",
    "SLObjective",
    "SLOTracker",
    "SamplerDaemon",
    "SlowQueryLog",
    "Span",
    "bind_current",
    "current_span",
    "emit",
    "event_log_capacity_from_environ",
    "percentile",
    "sample_interval_from_environ",
    "set_tracing",
    "span",
    "tracing_enabled",
]
