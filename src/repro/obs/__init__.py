"""Unified observability layer: tracing, metrics, events, exporters.

The engine's telemetry used to be fragmented — ``QueryStats`` per query,
``ShardLoad`` per run, fault counters per injector, buffer-pool stats per
shard — each with its own dialect.  This package is the shared substrate:

* :mod:`repro.obs.trace` — per-query / per-window span trees propagated
  through the executor pool into worker threads, plus a slow-query log;
* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges and
  fixed-bucket latency histograms fed by the router, executors, caches, the
  WAL and the retry/quarantine paths;
* :mod:`repro.obs.events` — a ring-buffered structured event log for
  lifecycle events (quarantine, reopen, recovery, checkpoint, escalation);
* :mod:`repro.obs.histogram` — the one percentile/histogram implementation
  every consumer (service driver, bench reporting, registry) shares;
* :mod:`repro.obs.snapshot` / :mod:`repro.obs.dump` — JSON and
  Prometheus-style exporters and the ``python -m repro.obs.dump`` CLI.

Two invariants the test suite pins:

* **Accounting invisibility** — nothing in this package performs a storage
  access.  Spans and metrics record wall-clock and *existing* counter values,
  so fig7/table1 I/O fingerprints are bit-identical with tracing enabled.
* **Near-free when disabled** — every instrumentation site is a no-op branch
  when ``REPRO_TRACE`` is unset (spans) or collapses to one dict update per
  operation (metrics); the ``obs_overhead`` bench keeps the macro-query
  overhead within 5%.
"""

from repro.obs.events import Event, EventLog, EVENTS, emit
from repro.obs.histogram import (
    DEFAULT_LATENCY_BUCKETS_MS,
    LatencyHistogram,
    percentile,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    SLOW_QUERIES,
    SlowQueryLog,
    Span,
    bind_current,
    current_span,
    set_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "EVENTS",
    "Event",
    "EventLog",
    "LatencyHistogram",
    "MetricsRegistry",
    "SLOW_QUERIES",
    "SlowQueryLog",
    "Span",
    "bind_current",
    "current_span",
    "emit",
    "percentile",
    "set_tracing",
    "span",
    "tracing_enabled",
]
