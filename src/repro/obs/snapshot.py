"""Whole-engine observability snapshots and their exporters.

:func:`observability_snapshot` gathers everything one engine instance knows
about itself — registry metrics, per-shard lifetime I/O, list-cache
occupancy, WAL and fault counters, shard health, recent events, slow
queries — into one plain dict.  Every read is a counter read: building a
snapshot performs **zero** storage accesses, so taking one mid-experiment
cannot perturb an I/O fingerprint.

Two render targets sit on top: :func:`to_json` (machines) and
:func:`to_prometheus_text` (scrapers; the flat ``name{label=value}`` series
of the registry only, since events and span trees have no Prometheus shape).
"""

from __future__ import annotations

import json

from repro.errors import ObservabilityError
from repro.obs.events import EVENTS
from repro.obs.trace import SLOW_QUERIES, tracing_enabled


def _shard_io(env) -> list[dict]:
    """Lifetime I/O counters per shard (a plain env reports one shard)."""
    shards = getattr(env, "shards", None)
    if shards is None:
        shards = [env]
    rows = []
    for index, shard in enumerate(shards):
        snap = shard.snapshot()
        rows.append({
            "shard": index if len(shards) > 1 else None,
            "pool": {
                "hits": snap.pool.hits,
                "misses": snap.pool.misses,
                "evictions": snap.pool.evictions,
                "dirty_writebacks": snap.pool.dirty_writebacks,
            },
            "disk": {
                "reads": snap.disk.reads,
                "writes": snap.disk.writes,
                "random_reads": snap.disk.random_reads,
                "sequential_reads": snap.disk.sequential_reads,
                "bytes_read": snap.disk.bytes_read,
                "bytes_written": snap.disk.bytes_written,
            },
        })
    return rows


def _wal_stats(env) -> list[dict]:
    """Per-shard WAL counters (empty on memory backends)."""
    shards = getattr(env, "shards", None)
    if shards is None:
        shards = [env]
    rows = []
    for index, shard in enumerate(shards):
        wal = getattr(shard.disk, "wal", None)
        if wal is None:
            continue
        rows.append({
            "shard": index if len(shards) > 1 else None,
            "records_appended": wal.stats.records_appended,
            "batches_committed": wal.stats.batches_committed,
            "bytes_appended": wal.stats.bytes_appended,
            "truncations": wal.stats.truncations,
        })
    return rows


def _list_cache(index) -> "dict | None":
    cache = getattr(index, "list_cache", None)
    if cache is None:
        return None
    return {
        "budget_bytes": cache.budget_bytes,
        "used_bytes": cache.used_bytes,
        "entries": len(cache),
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "evictions": cache.stats.evictions,
        "invalidations": cache.stats.invalidations,
    }


def observability_snapshot(engine) -> dict:
    """One structured snapshot of an engine's observable state.

    ``engine`` is an :class:`~repro.core.text_index.SVRTextIndex` (or
    anything exposing ``router`` and ``env`` the same way).  Events come from
    the router-owned log (scoped to this engine; the process-global stream is
    the fallback for routers predating the scoping); slow queries come from
    the process-global log — they are shared across engine instances by
    design.
    """
    router = getattr(engine, "router", None)
    if router is None:
        raise ObservabilityError(
            f"cannot snapshot {type(engine).__name__}: no router attached"
        )
    env = engine.env
    fault_stats = env.fault_stats()
    publish = getattr(router, "publish_gauges", None)
    if publish is not None:
        publish()
    events = getattr(router, "events", None)
    if events is None:
        events = EVENTS
    sampler = getattr(router, "sampler", None)
    slo = getattr(router, "slo", None)
    return {
        "engine": {
            "method": router.method_name,
            "shards": router.shard_count,
            "threads": router.threads,
            "durable": env.durable,
            "tracing": tracing_enabled(),
            "degraded": router.degraded,
            "combined_windows": router.combined_windows,
        },
        "metrics": router.metrics.snapshot(),
        "shard_io": _shard_io(env),
        "list_cache": _list_cache(router.index),
        "wal": _wal_stats(env),
        "fault_stats": None if fault_stats is None else {
            "injected": dict(fault_stats.injected),
            "retries": fault_stats.retries,
            "escalations": fault_stats.escalations,
        },
        "shard_health": [
            {
                "shard": health.shard,
                "quarantined": health.quarantined,
                "reason": health.reason,
                "failures": health.failures,
            }
            for health in router.shard_health()
        ],
        "events": [event.to_dict() for event in events.events()],
        "slow_queries": SLOW_QUERIES.entries(),
        "timeseries": None if sampler is None else sampler.snapshot(),
        "slo": None if slo is None else slo.status(),
    }


def to_json(snapshot: dict, indent: int = 2) -> str:
    """Render a snapshot as JSON (keys arrive pre-sorted where it matters)."""
    return json.dumps(snapshot, indent=indent, default=str)


#: ``# HELP`` text by metric name; series without an entry get a generic line.
_METRIC_HELP = {
    "query.count": "Queries answered by the router.",
    "query.latency_ms": "End-to-end query latency in milliseconds.",
    "query.pages_read": "Pages read from disk while answering queries.",
    "query.pool_hits": "Buffer-pool hits while answering queries.",
    "query.postings_scanned": "Postings decoded while answering queries.",
    "query.blocks_skipped": "Posting blocks skipped by block-max pruning or seeking.",
    "query.degraded": "Queries answered with quarantined shards excluded.",
    "update.count": "Score/document updates applied.",
    "update.window_ms": "Batched update window latency in milliseconds.",
    "update.windows": "Batched update windows applied.",
    "update.windows_combined": "Update windows combined by the group leader.",
    "update.batch_window": "Adaptive batch-window size chosen by the runner.",
    "shard.postings_scanned": "Postings decoded, attributed to the owning shard.",
    "shard.blocks_skipped": "Blocks skipped, attributed to the owning shard.",
    "shard.pages_read": "Query page reads attributed to the owning shard.",
    "shard.pool_hits": "Query pool hits attributed to the owning shard.",
    "shard.quarantined": "Shard quarantine transitions.",
    "shard.reopened": "Shard reopen (re-admission) transitions.",
    "shard.load_skew": "Max/mean of per-shard buffer-pool accesses (1.0 = balanced).",
    "pool.hit_rate": "Lifetime buffer-pool hit rate per shard.",
    "wal.buffered_bytes": "Uncommitted WAL buffer bytes per shard.",
    "list_cache.hits": "Inverted-list cache hits per shard.",
    "list_cache.misses": "Inverted-list cache misses per shard.",
}


def _escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def to_prometheus_text(engine) -> str:
    """Render the engine's registry in Prometheus text exposition format.

    Counters and gauges print as-is; histograms print the conventional
    ``_bucket``/``_sum``/``_count`` triplet with cumulative ``le`` buckets.
    Dots in series names become underscores (Prometheus naming rules), label
    values are escaped per the exposition format (backslash, double quote,
    newline), and each metric name carries ``# HELP``/``# TYPE`` headers
    exactly once.
    """
    router = getattr(engine, "router", None)
    if router is None:
        raise ObservabilityError(
            f"cannot export {type(engine).__name__}: no router attached"
        )
    publish = getattr(router, "publish_gauges", None)
    if publish is not None:
        publish()
    lines: list[str] = []
    headed: set[str] = set()

    def flat(name: str) -> str:
        return name.replace(".", "_")

    def head(name: str, kind: str) -> None:
        if name in headed:
            return
        headed.add(name)
        help_text = _METRIC_HELP.get(name, f"Engine series {name}.")
        lines.append(f"# HELP {flat(name)} {help_text}")
        lines.append(f"# TYPE {flat(name)} {kind}")

    def labelled(name: str, labels: tuple, extra: "tuple | None" = None) -> str:
        pairs = list(labels) + (list(extra) if extra else [])
        if not pairs:
            return flat(name)
        body = ",".join(
            f'{key}="{_escape_label_value(value)}"' for key, value in pairs
        )
        return f"{flat(name)}{{{body}}}"

    for kind, _rendered, name, labels, value in router.metrics.series():
        if kind in ("counter", "gauge"):
            head(name, kind)
            lines.append(f"{labelled(name, labels)} {value}")
        else:  # histogram snapshot dict with cumulative buckets
            head(name, "histogram")
            for bound, cumulative in value["buckets"]:
                lines.append(
                    f"{labelled(name + '_bucket', labels, (('le', bound),))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{labelled(name + '_bucket', labels, (('le', '+Inf'),))} "
                f"{value['count']}"
            )
            lines.append(f"{labelled(name + '_sum', labels)} {value['sum']}")
            lines.append(f"{labelled(name + '_count', labels)} {value['count']}")
    return "\n".join(lines) + "\n"
