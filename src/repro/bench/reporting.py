"""Plain-text reporting of experiment results.

Every experiment in :mod:`repro.bench.experiments` returns a list of row
dictionaries; this module renders them as aligned text tables in the same
layout as the paper's tables and figure series, and can persist them under
``benchmarks/results/`` so a benchmark run leaves a reviewable artefact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence

Row = Mapping[str, Any]


def format_rows(rows: Sequence[Row], columns: Sequence[str] | None = None,
                title: str | None = None) -> str:
    """Render rows as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.  Missing values render as empty cells.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_value(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def save_report(name: str, text: str, directory: str | Path = "benchmarks/results") -> Path:
    """Write a report to ``directory/name.txt`` and return the path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"{name}.txt"
    target.write_text(text + "\n", encoding="utf-8")
    return target


def _format_value(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
