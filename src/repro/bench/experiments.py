"""One experiment per table and figure of the paper's evaluation.

Every function returns a list of row dictionaries (ready for
:func:`repro.bench.reporting.format_rows`) and accepts a
:class:`~repro.bench.runner.BenchScale` so the same experiment can run at smoke
scale in the test suite and at benchmark scale from ``benchmarks/``.

The paper's absolute milliseconds were measured on a 2.8 GHz Pentium 4 against
an 805 MB BerkeleyDB database; the reproduction reports wall-clock time at a
reduced scale *and* the simulated I/O the arguments are actually about (page
reads under the cold-cache methodology).  EXPERIMENTS.md compares the shapes.

The paper tunes the Chunk and Score-Threshold knobs to 6.12 / 11.24 for its
100,000-document corpus; because the stopping rules act at chunk granularity,
the equivalent knob value depends on the corpus size, so the default method
line-ups below take the ratios from the active :class:`BenchScale` (Table 2
remains the explicit sweep over ratios).
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.bench.metrics import MeteredEnvironment, OperationMetrics
from repro.bench.runner import BenchScale, ExperimentRunner, MethodSetup
from repro.core.indexes.chunking import equal_count_chunks, exponential_count_chunks
from repro.workloads.synthetic import SyntheticDocument, term_name
from repro.workloads.zipf import ZipfSampler, zipf_scores

Row = dict[str, Any]


def svr_methods(scale: BenchScale) -> tuple[MethodSetup, ...]:
    """The four SVR-only methods compared throughout §5.3."""
    return (
        MethodSetup("id"),
        MethodSetup("score"),
        MethodSetup("score_threshold", {"threshold_ratio": scale.default_threshold_ratio}),
        MethodSetup("chunk", {"chunk_ratio": scale.default_chunk_ratio}),
    )


def termscore_methods(scale: BenchScale) -> tuple[MethodSetup, ...]:
    """The combined-scoring methods of §5.3.5.

    The fancy-list size is kept proportional to the reduced corpus (the paper
    does not publish the value used for its 100,000-document collection).
    """
    return (
        MethodSetup("id_termscore"),
        MethodSetup(
            "chunk_termscore",
            {"chunk_ratio": scale.default_chunk_ratio, "fancy_size": 25},
        ),
    )


def all_methods(scale: BenchScale) -> tuple[MethodSetup, ...]:
    """All six methods (Table 1 reports the long-list size of each)."""
    return svr_methods(scale) + termscore_methods(scale)


# ---------------------------------------------------------------------------
# Table 1 — size of long inverted lists
# ---------------------------------------------------------------------------


def table1_index_sizes(scale: BenchScale | None = None,
                       methods: Sequence[MethodSetup] | None = None) -> list[Row]:
    """Table 1: serialized size of the long inverted lists per method."""
    runner = ExperimentRunner(scale)
    if methods is None:
        methods = all_methods(runner.scale)
    rows: list[Row] = []
    for setup in methods:
        index, build_seconds = runner.build_index(setup)
        rows.append(
            {
                "method": setup.display_name,
                "long_list_bytes": index.long_list_size_bytes(),
                "long_list_mb": round(index.long_list_size_bytes() / (1024 * 1024), 3),
                "build_seconds": round(build_seconds, 2),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 2 — effect of the chunk ratio
# ---------------------------------------------------------------------------


def table2_chunk_ratio(scale: BenchScale | None = None,
                       ratios: Sequence[float] = (32.0, 16.0, 8.0, 4.0, 2.2, 1.4),
                       mean_steps: Sequence[float] = (100.0, 1000.0, 10000.0)) -> list[Row]:
    """Table 2: update and query time of the Chunk method as the chunk ratio varies.

    One row per (chunk ratio, mean update step); the paper's optimum moves to
    larger ratios as the update step grows.
    """
    runner = ExperimentRunner(scale)
    queries = runner.make_queries()
    rows: list[Row] = []
    for mean_step in mean_steps:
        updates = runner.make_updates(mean_step=mean_step)
        for ratio in ratios:
            setup = MethodSetup("chunk", {"chunk_ratio": ratio}, label=f"chunk@{ratio}")
            run = runner.measure_method(setup, updates, queries)
            rows.append(
                {
                    "mean_step": mean_step,
                    "chunk_ratio": ratio,
                    "avg_update_ms": round(run.update_metrics.avg_wall_ms, 4),
                    "avg_query_ms": round(run.query_metrics.avg_wall_ms, 4),
                    "update_pages": round(run.update_metrics.avg_pages_read, 2),
                    "query_pages": round(run.query_metrics.avg_pages_read, 2),
                    "query_io_ms": round(run.query_metrics.avg_estimated_io_ms, 3),
                    "short_list_bytes": run.short_list_bytes,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 7 — varying the number of score updates
# ---------------------------------------------------------------------------


def fig7_varying_updates(scale: BenchScale | None = None,
                         methods: Sequence[MethodSetup] | None = None,
                         update_counts: Sequence[int] | None = None,
                         score_method_update_cap: int = 200) -> list[Row]:
    """Figure 7: average update and query time as the number of updates grows.

    Each method's index is built once; the update stream is applied
    incrementally and queries are re-measured after each level.  The Score
    method's per-update cost is so high that only ``score_method_update_cap``
    updates are actually applied per level (its per-update average is already
    stable after a handful of updates); the row records how many were measured.
    """
    runner = ExperimentRunner(scale)
    effective_scale = runner.scale
    if methods is None:
        methods = svr_methods(effective_scale)
    if update_counts is None:
        total = effective_scale.num_updates
        update_counts = (0, max(1, total // 3), total)
    max_updates = max(update_counts)
    all_updates = runner.make_updates(num_updates=max_updates)
    queries = runner.make_queries()
    rows: list[Row] = []
    for setup in methods:
        index, _build = runner.build_index(setup)
        cumulative_updates = OperationMetrics(label="updates")
        applied = 0
        for target in sorted(update_counts):
            batch = all_updates[applied:target]
            applied = target
            if setup.method == "score" and len(batch) > score_method_update_cap:
                batch = batch[:score_method_update_cap]
            metrics = runner.apply_updates(index, batch)
            cumulative_updates.merge(metrics)
            query_metrics = runner.run_queries(index, queries)
            rows.append(
                {
                    "method": setup.display_name,
                    "updates": target,
                    "updates_measured": cumulative_updates.operations,
                    "avg_update_ms": round(cumulative_updates.avg_wall_ms, 4),
                    "avg_query_ms": round(query_metrics.avg_wall_ms, 4),
                    "query_pages": round(query_metrics.avg_pages_read, 2),
                    "query_io_ms": round(query_metrics.avg_estimated_io_ms, 3),
                }
            )
    return rows


def fig7_batched_storm(scale: BenchScale | None = None,
                       methods: Sequence[MethodSetup] | None = None,
                       batch_size: int = 1000,
                       score_method_update_cap: int = 1000) -> list[Row]:
    """Figure 7 companion: the same update storm applied per-update vs batched.

    Each method's index is built twice over the shared corpus; one copy
    receives the update stream through :meth:`~repro.bench.runner.ExperimentRunner.apply_updates`
    (one ``update_score`` call per update — the Figure 7 baseline), the other
    through windows of ``batch_size`` updates via ``apply_score_updates``.
    The Score method's stream is capped (like Figure 7 caps it) identically
    for both modes, so the comparison is over the same updates.  Each row also
    records whether the two indexes answer the query workload identically
    after the storm — the batched write path must leave the read path
    bit-for-bit equivalent.
    """
    runner = ExperimentRunner(scale)
    effective_scale = runner.scale
    if methods is None:
        methods = svr_methods(effective_scale)
    all_updates = runner.make_updates()
    queries = runner.make_queries()
    rows: list[Row] = []
    for setup in methods:
        stream = all_updates
        if setup.method == "score" and len(stream) > score_method_update_cap:
            stream = stream[:score_method_update_cap]
        single_index, _build = runner.build_index(setup)
        single_metrics = runner.apply_updates(single_index, stream)
        batched_index, _build = runner.build_index(setup)
        batched_metrics = runner.apply_updates_batched(
            batched_index, stream, batch_size=batch_size
        )
        results_match = all(
            _query_fingerprint(single_index, query) == _query_fingerprint(batched_index, query)
            for query in queries
        )
        single_ms = single_metrics.avg_wall_ms
        batched_ms = batched_metrics.avg_wall_ms
        rows.append(
            {
                "method": setup.display_name,
                "updates": len(stream),
                "batch_size": batch_size,
                "avg_update_ms_single": round(single_ms, 4),
                "avg_update_ms_batched": round(batched_ms, 4),
                "speedup": round(single_ms / batched_ms, 2) if batched_ms else 0.0,
                "update_pages_single": round(single_metrics.avg_pages_read, 2),
                "update_pages_batched": round(batched_metrics.avg_pages_read, 2),
                "results_match": results_match,
            }
        )
    return rows


def _query_fingerprint(index, query) -> tuple:
    """The (doc_id, score) results of one query — the read-path fingerprint."""
    response = index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
    return tuple((result.doc_id, result.score) for result in response.results)


# ---------------------------------------------------------------------------
# Figure 8 — varying the number of desired results k
# ---------------------------------------------------------------------------


def fig8_varying_k(scale: BenchScale | None = None,
                   methods: Sequence[MethodSetup] | None = None,
                   ks: Sequence[int] = (1, 5, 10, 50, 200)) -> list[Row]:
    """Figure 8: query time of ID, Score-Threshold and Chunk as k varies."""
    runner = ExperimentRunner(scale)
    effective_scale = runner.scale
    if methods is None:
        methods = (
            MethodSetup("id"),
            MethodSetup(
                "score_threshold", {"threshold_ratio": effective_scale.default_threshold_ratio}
            ),
            MethodSetup("chunk", {"chunk_ratio": effective_scale.default_chunk_ratio}),
        )
    updates = runner.make_updates()
    rows: list[Row] = []
    for setup in methods:
        index, _build = runner.build_index(setup)
        runner.apply_updates(index, updates)
        for k in ks:
            queries = runner.make_queries(k=k)
            metrics = runner.run_queries(index, queries)
            rows.append(
                {
                    "method": setup.display_name,
                    "k": k,
                    "avg_query_ms": round(metrics.avg_wall_ms, 4),
                    "query_pages": round(metrics.avg_pages_read, 2),
                    "query_io_ms": round(metrics.avg_estimated_io_ms, 3),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 9 — combining term scores
# ---------------------------------------------------------------------------


def fig9_termscore(scale: BenchScale | None = None,
                   methods: Sequence[MethodSetup] | None = None) -> list[Row]:
    """Figure 9: Chunk-TermScore vs ID-TermScore under combined SVR + term scoring."""
    runner = ExperimentRunner(scale)
    if methods is None:
        methods = termscore_methods(runner.scale)
    updates = runner.make_updates()
    queries = runner.make_queries()
    rows: list[Row] = []
    for setup in methods:
        run = runner.measure_method(setup, updates, queries)
        rows.append(
            {
                "method": setup.display_name,
                "avg_update_ms": round(run.update_metrics.avg_wall_ms, 4),
                "avg_query_ms": round(run.query_metrics.avg_wall_ms, 4),
                "query_pages": round(run.query_metrics.avg_pages_read, 2),
                "query_io_ms": round(run.query_metrics.avg_estimated_io_ms, 3),
                "long_list_mb": round(run.long_list_bytes / (1024 * 1024), 3),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 10 — disjunctive queries
# ---------------------------------------------------------------------------


def fig10_disjunctive(scale: BenchScale | None = None,
                      methods: Sequence[MethodSetup] | None = None) -> list[Row]:
    """Figure 10: conjunctive vs disjunctive query time per method."""
    runner = ExperimentRunner(scale)
    effective_scale = runner.scale
    if methods is None:
        methods = (
            MethodSetup("id"),
            MethodSetup("id_termscore"),
            MethodSetup(
                "score_threshold", {"threshold_ratio": effective_scale.default_threshold_ratio}
            ),
            MethodSetup("chunk", {"chunk_ratio": effective_scale.default_chunk_ratio}),
            MethodSetup("chunk_termscore", {"chunk_ratio": effective_scale.default_chunk_ratio}),
        )
    updates = runner.make_updates()
    conjunctive = runner.make_queries(conjunctive=True)
    disjunctive = runner.make_queries(conjunctive=False)
    rows: list[Row] = []
    for setup in methods:
        index, _build = runner.build_index(setup)
        runner.apply_updates(index, updates)
        conj_metrics = runner.run_queries(index, conjunctive)
        disj_metrics = runner.run_queries(index, disjunctive)
        rows.append(
            {
                "method": setup.display_name,
                "conj_query_ms": round(conj_metrics.avg_wall_ms, 4),
                "disj_query_ms": round(disj_metrics.avg_wall_ms, 4),
                "conj_pages": round(conj_metrics.avg_pages_read, 2),
                "disj_pages": round(disj_metrics.avg_pages_read, 2),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 3 (Appendix A.3) — document insertions
# ---------------------------------------------------------------------------


def table3_insertions(scale: BenchScale | None = None,
                      insertion_counts: Sequence[int] | None = None,
                      score_update_sample: int = 300,
                      batched_score_updates: bool = False,
                      batch_size: int = 256) -> list[Row]:
    """Table 3: Chunk-method query / score-update / insertion cost vs #insertions.

    Documents are inserted incrementally after the bulk build; after each level
    the query workload and a sample of score updates are re-measured (queries
    right after the insertions, as in the paper).  The default insertion counts
    are 1/2/5/10% of the corpus, matching the paper's 1,000-10,000 insertions
    over its 100,000-document collection.

    With ``batched_score_updates=True`` the score-update sample is applied in
    windows of ``batch_size`` through the batched pipeline instead of one
    ``update_score`` call at a time — the batched mode measured against the
    per-update baseline by ``benchmarks/bench_table3_insertions.py``.
    """
    runner = ExperimentRunner(scale)
    effective_scale = runner.scale
    if insertion_counts is None:
        base = effective_scale.corpus.num_docs
        insertion_counts = tuple(
            max(5, int(round(base * fraction))) for fraction in (0.01, 0.02, 0.05, 0.10)
        )
    setup = MethodSetup("chunk", {"chunk_ratio": effective_scale.default_chunk_ratio})
    index, _build = runner.build_index(setup)
    queries = runner.make_queries()
    updates = runner.make_updates(num_updates=score_update_sample)
    meter = MeteredEnvironment(index.env)

    corpus_config = effective_scale.corpus
    new_documents = _generate_insertions(
        start_id=corpus_config.num_docs + 1,
        count=max(insertion_counts),
        corpus_config=corpus_config,
    )
    rows: list[Row] = []
    inserted = 0
    insertion_metrics = OperationMetrics(label="insertions")
    for target in sorted(insertion_counts):
        for document in new_documents[inserted:target]:
            with meter.measure(insertion_metrics):
                index.insert_document_terms(document.doc_id, document.terms, document.score)
        inserted = target
        if batched_score_updates:
            update_metrics = runner.apply_updates_batched(
                index, updates, batch_size=batch_size
            )
        else:
            update_metrics = runner.apply_updates(index, updates)
        query_metrics = runner.run_queries(index, queries)
        rows.append(
            {
                "inserted_docs": target,
                "update_mode": "batched" if batched_score_updates else "single",
                "avg_query_ms": round(query_metrics.avg_wall_ms, 4),
                "avg_score_update_ms": round(update_metrics.avg_wall_ms, 4),
                "avg_insertion_ms": round(insertion_metrics.avg_wall_ms, 4),
                "short_list_bytes": index.index.short_list_size_bytes(),
            }
        )
    return rows


def _generate_insertions(start_id: int, count: int, corpus_config) -> list[SyntheticDocument]:
    """Fresh documents (term sequences + scores) for the insertion experiment."""
    sampler = ZipfSampler(corpus_config.num_distinct_terms, corpus_config.term_zipf,
                          rng=random.Random(corpus_config.seed + 1))
    scores = zipf_scores(count, corpus_config.max_score, corpus_config.score_zipf,
                         rng=random.Random(corpus_config.seed + 2))
    documents = []
    for index in range(count):
        ranks = sampler.sample_ranks(corpus_config.terms_per_doc)
        documents.append(
            SyntheticDocument(
                doc_id=start_id + index,
                terms=tuple(term_name(rank) for rank in ranks),
                structured_value="",
                score=scores[index],
            )
        )
    return documents


# ---------------------------------------------------------------------------
# Ablations called out in DESIGN.md
# ---------------------------------------------------------------------------


def ablation_threshold_ratio(scale: BenchScale | None = None,
                             ratios: Sequence[float] = (1.5, 2.0, 4.0, 8.0, 32.0)) -> list[Row]:
    """§5.3.1 (text): the Score-Threshold update/query trade-off vs threshold ratio."""
    runner = ExperimentRunner(scale)
    updates = runner.make_updates()
    queries = runner.make_queries()
    rows: list[Row] = []
    for ratio in ratios:
        setup = MethodSetup(
            "score_threshold", {"threshold_ratio": ratio}, label=f"score_threshold@{ratio}"
        )
        run = runner.measure_method(setup, updates, queries)
        rows.append(
            {
                "threshold_ratio": ratio,
                "avg_update_ms": round(run.update_metrics.avg_wall_ms, 4),
                "avg_query_ms": round(run.query_metrics.avg_wall_ms, 4),
                "query_pages": round(run.query_metrics.avg_pages_read, 2),
                "short_list_bytes": run.short_list_bytes,
            }
        )
    return rows


def ablation_chunk_boundaries(scale: BenchScale | None = None,
                              num_chunks: int = 12) -> list[Row]:
    """§4.3.2 design choice: ratio-based vs equal-count vs exponential chunk boundaries."""
    runner = ExperimentRunner(scale)
    effective_scale = runner.scale
    updates = runner.make_updates()
    queries = runner.make_queries()
    strategies = {
        "ratio": MethodSetup(
            "chunk", {"chunk_ratio": effective_scale.default_chunk_ratio}, label="ratio"
        ),
        "equal_count": MethodSetup(
            "chunk",
            {"chunk_strategy": lambda scores: equal_count_chunks(scores, num_chunks)},
            label="equal_count",
        ),
        "exponential": MethodSetup(
            "chunk",
            {"chunk_strategy": lambda scores: exponential_count_chunks(scores, num_chunks)},
            label="exponential",
        ),
    }
    rows: list[Row] = []
    for name, setup in strategies.items():
        run = runner.measure_method(setup, updates, queries)
        rows.append(
            {
                "strategy": name,
                "avg_update_ms": round(run.update_metrics.avg_wall_ms, 4),
                "avg_query_ms": round(run.query_metrics.avg_wall_ms, 4),
                "query_pages": round(run.query_metrics.avg_pages_read, 2),
            }
        )
    return rows


def ablation_focus_set(scale: BenchScale | None = None,
                       focus_fractions: Sequence[float] = (0.0, 0.01, 0.05),
                       directions: Sequence[str] = ("increase", "mixed")) -> list[Row]:
    """§5.1 focus-set parameters: flash-crowd updates against the Chunk method."""
    runner = ExperimentRunner(scale)
    effective_scale = runner.scale
    queries = runner.make_queries()
    rows: list[Row] = []
    for fraction in focus_fractions:
        for direction in directions:
            updates = runner.make_updates(
                focus_set_fraction=fraction,
                focus_update_fraction=0.5 if fraction > 0 else 0.0,
                focus_direction=direction,
            )
            setup = MethodSetup(
                "chunk", {"chunk_ratio": effective_scale.default_chunk_ratio}
            )
            run = runner.measure_method(setup, updates, queries)
            rows.append(
                {
                    "focus_fraction": fraction,
                    "direction": direction,
                    "avg_update_ms": round(run.update_metrics.avg_wall_ms, 4),
                    "avg_query_ms": round(run.query_metrics.avg_wall_ms, 4),
                    "short_list_bytes": run.short_list_bytes,
                }
            )
    return rows
