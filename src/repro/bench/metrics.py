"""Timing and I/O metric collection for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.storage.environment import IOSnapshot, StorageEnvironment
from repro.storage.sharding import ShardedEnvironment, ShardLoad, shard_load


@dataclass
class OperationMetrics:
    """Aggregated measurements for a class of operations (updates, queries, ...).

    The paper reports the *average time per operation*; this class accumulates
    wall-clock time and simulated I/O across operations and exposes the same
    per-operation averages, so experiment tables can print either.
    """

    label: str = ""
    operations: int = 0
    wall_ms: float = 0.0
    pages_read: int = 0
    pages_written: int = 0
    pool_hits: int = 0
    estimated_io_ms: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    # -- per-operation averages ------------------------------------------------

    @property
    def avg_wall_ms(self) -> float:
        """Average wall-clock milliseconds per operation."""
        return self.wall_ms / self.operations if self.operations else 0.0

    @property
    def avg_pages_read(self) -> float:
        """Average simulated page reads per operation."""
        return self.pages_read / self.operations if self.operations else 0.0

    @property
    def avg_estimated_io_ms(self) -> float:
        """Average estimated I/O milliseconds per operation (the cost-model view)."""
        return self.estimated_io_ms / self.operations if self.operations else 0.0

    # -- accumulation -------------------------------------------------------------

    def record(self, wall_ms: float, pages_read: int = 0, pages_written: int = 0,
               pool_hits: int = 0, estimated_io_ms: float = 0.0) -> None:
        """Add one operation's measurements."""
        self.operations += 1
        self.wall_ms += wall_ms
        self.pages_read += pages_read
        self.pages_written += pages_written
        self.pool_hits += pool_hits
        self.estimated_io_ms += estimated_io_ms

    def merge(self, other: "OperationMetrics") -> None:
        """Fold another metrics object into this one."""
        self.operations += other.operations
        self.wall_ms += other.wall_ms
        self.pages_read += other.pages_read
        self.pages_written += other.pages_written
        self.pool_hits += other.pool_hits
        self.estimated_io_ms += other.estimated_io_ms

    def record_spread(self, measured: "OperationMetrics", operations: int) -> None:
        """Fold in a measurement that covered ``operations`` logical operations.

        Batched application measures one window at a time; spreading the
        window's totals over its constituent updates keeps the per-operation
        averages comparable with one-measurement-per-update collection.
        """
        self.merge(measured)
        self.operations += operations - measured.operations

    def export_into(self, registry, prefix: str = "bench") -> None:
        """Publish this metrics object as gauges on an obs registry.

        Gauges, not counters: re-exporting after more operations overwrites
        the series with the latest totals instead of double-counting.  The
        ``label`` becomes a series label; ``extra`` entries export under
        ``<prefix>.extra.<key>``.
        """
        labels = {"bench": self.label} if self.label else {}
        registry.set_gauge(f"{prefix}.operations",
                           float(self.operations), **labels)
        registry.set_gauge(f"{prefix}.wall_ms", self.wall_ms, **labels)
        registry.set_gauge(f"{prefix}.pages_read",
                           float(self.pages_read), **labels)
        registry.set_gauge(f"{prefix}.pages_written",
                           float(self.pages_written), **labels)
        registry.set_gauge(f"{prefix}.pool_hits",
                           float(self.pool_hits), **labels)
        registry.set_gauge(f"{prefix}.estimated_io_ms",
                           self.estimated_io_ms, **labels)
        registry.set_gauge(f"{prefix}.avg_wall_ms", self.avg_wall_ms, **labels)
        for key in sorted(self.extra):
            registry.set_gauge(f"{prefix}.extra.{key}",
                               float(self.extra[key]), **labels)

    def as_row(self) -> dict[str, float | int | str]:
        """Flattened representation used by the reporting module.

        ``extra`` entries (shard skew, service latency percentiles, adaptive
        window sizes ...) are appended after the core columns so workload
        drivers can surface their profile in the same tables.
        """
        row: dict[str, float | int | str] = {
            "label": self.label,
            "operations": self.operations,
            "avg_wall_ms": round(self.avg_wall_ms, 4),
            "avg_pages_read": round(self.avg_pages_read, 2),
            "avg_io_ms": round(self.avg_estimated_io_ms, 4),
        }
        for key in sorted(self.extra):
            row.setdefault(key, self.extra[key])
        return row


def record_shard_load(metrics: OperationMetrics,
                      env: "StorageEnvironment | ShardedEnvironment") -> ShardLoad:
    """Attach an environment's per-shard load summary to a metrics object.

    Stores the shard count and the max/mean access skew in ``metrics.extra``
    (a plain environment reports one shard with skew 1.0) and returns the full
    :class:`ShardLoad` for callers that want the per-shard vectors.  Reads
    lifetime counters only — measuring the load is accounting-free.
    """
    load = shard_load(env)
    metrics.extra["shards"] = float(load.shard_count)
    metrics.extra["shard_skew"] = round(load.skew, 4)
    return load


class MeteredEnvironment:
    """Helper pairing a storage environment with wall-clock timing.

    Works with a plain environment or a sharded one — in the sharded case the
    recorded I/O deltas are the per-category sums over every shard, so the
    per-operation averages stay comparable across shard counts.

    Usage::

        meter = MeteredEnvironment(env)
        with meter.measure(metrics):
            index.update_score(doc, new_score)
    """

    def __init__(self, env: "StorageEnvironment | ShardedEnvironment") -> None:
        self.env = env

    @contextmanager
    def measure(self, metrics: OperationMetrics) -> Iterator[None]:
        """Record one operation's wall time and I/O delta into ``metrics``."""
        before: IOSnapshot = self.env.snapshot()
        start = time.perf_counter()
        yield
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        delta = self.env.delta_since(before)
        metrics.record(
            wall_ms=elapsed_ms,
            pages_read=delta.page_reads,
            pages_written=delta.page_writes,
            pool_hits=delta.pool_hits,
            estimated_io_ms=delta.cost_ms(),
        )
