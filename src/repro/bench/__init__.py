"""Experiment harness reproducing the paper's evaluation (§5 and Appendix A.3).

The ``benchmarks/`` directory at the repository root is a thin pytest-benchmark
wrapper around this package:

* :mod:`repro.bench.metrics` — per-operation timing and I/O metric collection,
* :mod:`repro.bench.runner` — building indexes, applying update workloads and
  running query workloads under the paper's cold-cache methodology,
* :mod:`repro.bench.experiments` — one function per paper table/figure (plus
  the ablations DESIGN.md calls out), each returning structured rows,
* :mod:`repro.bench.reporting` — plain-text tables mirroring the paper's layout.
"""

from repro.bench.experiments import (
    ablation_chunk_boundaries,
    ablation_focus_set,
    ablation_threshold_ratio,
    fig7_varying_updates,
    fig8_varying_k,
    fig9_termscore,
    fig10_disjunctive,
    table1_index_sizes,
    table2_chunk_ratio,
    table3_insertions,
)
from repro.bench.metrics import OperationMetrics
from repro.bench.reporting import format_rows, save_report
from repro.bench.runner import BenchScale, ExperimentRunner, MethodSetup

__all__ = [
    "OperationMetrics",
    "BenchScale",
    "MethodSetup",
    "ExperimentRunner",
    "table1_index_sizes",
    "table2_chunk_ratio",
    "table3_insertions",
    "fig7_varying_updates",
    "fig8_varying_k",
    "fig9_termscore",
    "fig10_disjunctive",
    "ablation_threshold_ratio",
    "ablation_chunk_boundaries",
    "ablation_focus_set",
    "format_rows",
    "save_report",
]
