"""Experiment runner: build indexes, apply update workloads, run query workloads.

The runner reproduces the paper's measurement methodology (§5.2):

* the long inverted lists are evicted from the buffer pool before every query
  ("queries were run ... using a cold cache for the long inverted lists"),
  while the Score table and short lists stay cache-resident;
* updates are measured as the average over the whole update stream;
* query times are averaged over the query workload (the paper uses 50
  independent measurements).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

from repro.bench.metrics import MeteredEnvironment, OperationMetrics, record_shard_load
from repro.core.text_index import SVRTextIndex
from repro.workloads.queries import KeywordQuery, QueryWorkload, QueryWorkloadConfig
from repro.workloads.synthetic import (
    SyntheticCorpus,
    SyntheticCorpusConfig,
    generate_corpus,
)
from repro.workloads.updates import (
    ScoreUpdate,
    UpdateWorkload,
    UpdateWorkloadConfig,
    resolve_batch,
)


@dataclass(frozen=True)
class MethodSetup:
    """An index method plus the constructor options it should be built with."""

    method: str
    options: dict[str, Any] = field(default_factory=dict)
    label: str | None = None

    @property
    def display_name(self) -> str:
        """Name shown in experiment tables."""
        return self.label if self.label is not None else self.method


@dataclass(frozen=True)
class BenchScale:
    """One knob controlling how big every experiment's workload is.

    The paper's corpus (100k documents of 2,000 terms) is far beyond what a
    pure-Python interpreter can index in benchmark time, so experiments default
    to the ``small`` preset and can be scaled up or down uniformly.
    """

    corpus: SyntheticCorpusConfig
    num_updates: int
    num_queries: int
    cache_pages: int
    mean_step: float = 100.0
    default_k: int = 10
    min_chunk_size: int = 10
    # The paper's long inverted lists span hundreds of 4 KiB BerkeleyDB pages;
    # a reduced corpus with 4 KiB pages would fit whole lists in one page and
    # hide the I/O differences the experiments are about, so the page size is
    # scaled down together with the corpus.
    page_size: int = 512
    # The paper tunes the chunk ratio to 6.12 and the threshold ratio to 11.24
    # for a 100,000-document corpus.  At the reduced corpus sizes below those
    # ratios leave too few chunks for early termination to engage, so each
    # scale carries the ratio appropriate for its document count (the same
    # workload-dependent tuning Table 2 is about).
    default_chunk_ratio: float = 2.2
    default_threshold_ratio: float = 4.0

    @classmethod
    def smoke(cls) -> "BenchScale":
        """Tiny scale used by the test suite (seconds, not minutes)."""
        return cls(
            corpus=SyntheticCorpusConfig(
                num_docs=150, terms_per_doc=30, num_distinct_terms=600, seed=7
            ),
            num_updates=200,
            num_queries=5,
            cache_pages=1024,
            min_chunk_size=5,
            default_chunk_ratio=2.0,
            default_threshold_ratio=3.0,
            page_size=512,
        )

    @classmethod
    def small(cls) -> "BenchScale":
        """Default benchmark scale (a few minutes for the full suite)."""
        return cls(
            corpus=SyntheticCorpusConfig(
                num_docs=1200, terms_per_doc=80, num_distinct_terms=8000, seed=7
            ),
            num_updates=3000,
            num_queries=12,
            cache_pages=4096,
            min_chunk_size=20,
            default_chunk_ratio=2.2,
            default_threshold_ratio=4.0,
            page_size=512,
        )

    @classmethod
    def medium(cls) -> "BenchScale":
        """Larger scale for overnight runs."""
        return cls(
            corpus=SyntheticCorpusConfig(
                num_docs=5000, terms_per_doc=150, num_distinct_terms=20000, seed=7
            ),
            num_updates=10000,
            num_queries=25,
            cache_pages=8192,
            min_chunk_size=50,
            default_chunk_ratio=3.0,
            default_threshold_ratio=6.0,
            page_size=1024,
        )

    def with_updates(self, num_updates: int) -> "BenchScale":
        """A copy with a different update count."""
        return replace(self, num_updates=num_updates)


@dataclass
class MethodRun:
    """Everything measured for one index method in one experiment cell."""

    setup: MethodSetup
    build_seconds: float
    long_list_bytes: int
    short_list_bytes: int
    update_metrics: OperationMetrics
    query_metrics: OperationMetrics


class ExperimentRunner:
    """Builds indexes over a shared corpus and measures update/query workloads.

    ``shards`` selects the storage engine: 1 (the default) is the paper's
    single-environment layout, larger counts partition the term space across
    that many environments (the total ``cache_pages`` budget is split across
    their buffer pools) and experiment metrics additionally record per-shard
    load skew.

    ``backend`` selects where pages live: ``"memory"`` (the default) keeps
    the seed engine; ``"file"`` builds every index on a
    :class:`~repro.storage.persistence.file_disk.FileBackedDisk` under
    ``storage_dir`` (a fresh temporary directory when omitted).  The two
    backends share the accounting code, so experiment I/O numbers are
    identical — the file backend exists so full-corpus runs fit in RAM and
    restart workloads have something to restart.
    """

    def __init__(self, scale: BenchScale | None = None,
                 corpus: SyntheticCorpus | None = None, shards: int = 1,
                 threads: int = 1, backend: str = "memory",
                 storage_dir: str | None = None) -> None:
        if backend not in ("memory", "file"):
            raise ValueError(f"backend must be 'memory' or 'file', got {backend!r}")
        self.scale = scale if scale is not None else BenchScale.small()
        self.corpus = corpus if corpus is not None else generate_corpus(self.scale.corpus)
        self.shards = shards
        self.threads = threads
        self.backend = backend
        self.storage_dir = storage_dir
        self._owns_storage_dir = False
        self._build_counter = 0
        self._built_indexes: list[SVRTextIndex] = []

    def _next_index_path(self) -> str | None:
        """A fresh directory for the next file-backed index build."""
        if self.backend != "file":
            return None
        import os
        import shutil
        import tempfile
        import weakref

        if self.storage_dir is None:
            self.storage_dir = tempfile.mkdtemp(prefix="repro-bench-")
            self._owns_storage_dir = True
            # GC fallback: a runner abandoned without cleanup() must not
            # strand full index images under the temp root.
            weakref.finalize(self, shutil.rmtree, self.storage_dir,
                             ignore_errors=True)
        self._build_counter += 1
        return os.path.join(self.storage_dir, f"index-{self._build_counter:04d}")

    def cleanup(self) -> None:
        """Close every index this runner built and drop its own temp storage.

        File-backed sweeps build one durable index per method; this releases
        their page-file/WAL handles deterministically and removes the
        runner-created directory (a caller-supplied ``storage_dir`` is left
        alone).  Safe to call repeatedly; a no-op on the memory backend.
        """
        import shutil

        for index in self._built_indexes:
            index.close()
        self._built_indexes.clear()
        if self._owns_storage_dir and self.storage_dir is not None:
            shutil.rmtree(self.storage_dir, ignore_errors=True)
            self.storage_dir = None
            self._owns_storage_dir = False

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cleanup()

    # -- building --------------------------------------------------------------

    def build_index(self, setup: MethodSetup) -> tuple[SVRTextIndex, float]:
        """Build one index over the shared corpus; returns (index, build seconds)."""
        options = dict(setup.options)
        if setup.method in ("chunk", "chunk_termscore"):
            options.setdefault("min_chunk_size", self.scale.min_chunk_size)
        index = SVRTextIndex(
            method=setup.method, cache_pages=self.scale.cache_pages,
            page_size=self.scale.page_size, shards=self.shards,
            threads=self.threads, path=self._next_index_path(), **options
        )
        if self.backend == "file":
            self._built_indexes.append(index)
        start = time.perf_counter()
        for document in self.corpus.iter_documents():
            index.add_document_terms(document.doc_id, document.terms, document.score)
        index.finalize()
        build_seconds = time.perf_counter() - start
        return index, build_seconds

    # -- workloads --------------------------------------------------------------------

    def make_updates(self, num_updates: int | None = None, mean_step: float | None = None,
                     focus_set_fraction: float = 0.01, focus_update_fraction: float = 0.2,
                     focus_direction: str = "increase", seed: int = 11) -> list[ScoreUpdate]:
        """Generate a score-update stream over the shared corpus."""
        config = UpdateWorkloadConfig(
            num_updates=num_updates if num_updates is not None else self.scale.num_updates,
            mean_step=mean_step if mean_step is not None else self.scale.mean_step,
            focus_set_fraction=focus_set_fraction,
            focus_update_fraction=focus_update_fraction,
            focus_direction=focus_direction,
            seed=seed,
        )
        workload = UpdateWorkload(config, self.corpus.scores())
        return workload.generate_list()

    def make_queries(self, num_queries: int | None = None, k: int | None = None,
                     selectivity: str = "unselective", conjunctive: bool = True,
                     terms_per_query: int = 2, seed: int = 23) -> list[KeywordQuery]:
        """Generate a keyword-query workload over the shared corpus."""
        config = QueryWorkloadConfig(
            num_queries=num_queries if num_queries is not None else self.scale.num_queries,
            terms_per_query=terms_per_query,
            selectivity=selectivity,
            k=k if k is not None else self.scale.default_k,
            conjunctive=conjunctive,
            seed=seed,
        )
        pool_size = config.candidate_pool_size(self.scale.corpus.num_distinct_terms)
        frequent = self.corpus.frequent_terms(max(pool_size, config.terms_per_query))
        return QueryWorkload(
            config, frequent, vocabulary_size=self.scale.corpus.num_distinct_terms
        ).generate()

    # -- measurement ---------------------------------------------------------------------

    def apply_updates(self, index: SVRTextIndex, updates: Iterable[ScoreUpdate],
                      label: str = "updates") -> OperationMetrics:
        """Apply a score-update stream through the index, measuring each update."""
        metrics = OperationMetrics(label=label)
        meter = MeteredEnvironment(index.env)
        for update in updates:
            current = index.current_score(update.doc_id)
            if current is None:
                continue
            new_score = update.apply_to(current)
            with meter.measure(metrics):
                index.update_score(update.doc_id, new_score)
        return metrics

    def apply_updates_batched(self, index: SVRTextIndex,
                              updates: Iterable[ScoreUpdate],
                              batch_size: int = 256,
                              label: str = "batched-updates",
                              adaptive: bool = True,
                              min_batch: int = 32,
                              max_batch: int = 8192,
                              shrink_hit_rate: float = 0.55,
                              degrade_tolerance: float = 1.25) -> OperationMetrics:
        """Apply a score-update stream in windows through ``apply_score_updates``.

        Each window is resolved to absolute scores against the index's current
        state and applied as one batch; the metrics record one operation *per
        update* (the measured wall time and I/O of a window are spread over
        its updates), so ``avg_wall_ms`` is directly comparable with
        :meth:`apply_updates`.

        With ``adaptive=True`` (the default — the ``adaptive_batch_window``
        entry in ``BENCH_storage_micro.json`` shows the adaptive controller
        beating every fixed candidate window on the fig7 batched storm; pass
        ``adaptive=False`` to pin a fixed ``batch_size``) the window size
        hill-climbs on the *measured per-update wall time*: a window that was
        at least as cheap per update as the best seen so far doubles the next
        one (bulk passes amortize more descents per leaf run), a window
        ``degrade_tolerance``× worse than the previous one halves it.  The
        windowed buffer-pool hit rate (the per-window form of
        :meth:`repro.storage.buffer_pool.BufferPool.hit_rate`) acts as a
        brake: growth stops while the pool thrashes (hit rate below
        ``shrink_hit_rate``) *and* the cost curve is no longer improving, so
        a write burst never outruns what the cache absorbs.  The final window
        lands in ``metrics.extra["batch_window"]``.
        """
        from itertools import islice

        metrics = OperationMetrics(label=label)
        meter = MeteredEnvironment(index.env)
        stream = iter(updates)
        window = batch_size
        best_per_update: float | None = None
        previous_per_update: float | None = None
        while True:
            batch = list(islice(stream, window))
            if not batch:
                break
            touched = {update.doc_id for update in batch}
            current = index.current_scores(touched)
            resolved = resolve_batch(batch, current)
            if not resolved:
                continue
            batch_metrics = OperationMetrics(label=label)
            with meter.measure(batch_metrics):
                index.apply_score_updates(resolved)
            metrics.record_spread(batch_metrics, operations=len(resolved))
            if adaptive and len(resolved) >= window // 2:
                per_update = batch_metrics.wall_ms / len(resolved)
                accesses = batch_metrics.pool_hits + batch_metrics.pages_read
                hit_rate = batch_metrics.pool_hits / accesses if accesses else 1.0
                if (previous_per_update is not None
                        and per_update > previous_per_update * degrade_tolerance):
                    window = max(min_batch, window // 2)
                elif (best_per_update is None or per_update <= best_per_update
                        or hit_rate >= shrink_hit_rate):
                    window = min(max_batch, window * 2)
                if best_per_update is None or per_update < best_per_update:
                    best_per_update = per_update
                previous_per_update = per_update
                # Publish the controller's live choice so dashboards (and the
                # sampler's windows) see the adaptation, not just the final
                # value in the bench row.
                index.router.metrics.set_gauge("update.batch_window",
                                               float(window))
        metrics.extra["batch_window"] = float(window)
        index.router.metrics.set_gauge("update.batch_window", float(window))
        return metrics

    def run_queries(self, index: SVRTextIndex, queries: Sequence[KeywordQuery],
                    cold_cache: bool = True, label: str = "queries",
                    warmup: bool = True) -> OperationMetrics:
        """Run a query workload, evicting long-list pages before each query.

        The paper's methodology keeps the Score table and short lists hot while
        the long lists are cold; the optional unmeasured warm-up query brings
        those small structures into the cache before measurement starts.
        """
        metrics = OperationMetrics(label=label)
        meter = MeteredEnvironment(index.env)
        if warmup:
            for query in queries:
                index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
        for query in queries:
            if cold_cache:
                index.drop_long_list_cache()
            with meter.measure(metrics):
                index.search(query.keywords, k=query.k, conjunctive=query.conjunctive)
        record_shard_load(metrics, index.env)
        return metrics

    def run_multiclient(self, index: SVRTextIndex,
                        config: "MultiClientConfig | None" = None,
                        num_queries: int | None = None,
                        num_updates: int | None = None):
        """Replay interleaved multi-client traffic against a built index.

        Deals the runner's query and update workloads across the configured
        clients and replays them round-robin (see
        :class:`repro.workloads.multiclient.MultiClientDriver`); returns the
        driver's :class:`MultiClientResult`, whose ``shard_load`` reports how
        evenly the traffic spread across the index's storage shards.
        """
        from repro.workloads.multiclient import MultiClientConfig, MultiClientDriver

        config = config if config is not None else MultiClientConfig()
        queries = self.make_queries(num_queries=num_queries)
        updates = self.make_updates(num_updates=num_updates)
        driver = MultiClientDriver(config, queries, updates)
        return driver.run(index)

    def run_service_load(self, index: SVRTextIndex,
                         config: "ServiceLoadConfig | None" = None,
                         num_queries: int | None = None,
                         num_updates: int | None = None):
        """Drive concurrent closed-loop clients against a built index.

        The clients replay the same per-client schedules
        :meth:`run_multiclient` would replay round-robin, but from one thread
        each (see :class:`repro.workloads.service.ServiceLoadDriver`); the
        returned result carries the p50/p95/p99 latency profile and aggregate
        throughput, ready to export with ``result.record_into(metrics)``.
        """
        from repro.workloads.service import ServiceLoadConfig, ServiceLoadDriver

        config = config if config is not None else ServiceLoadConfig()
        queries = self.make_queries(num_queries=num_queries)
        updates = self.make_updates(num_updates=num_updates)
        driver = ServiceLoadDriver(config, queries, updates)
        return driver.run(index)

    # -- one-stop measurement for a method --------------------------------------------------

    def measure_method(self, setup: MethodSetup, updates: Sequence[ScoreUpdate],
                       queries: Sequence[KeywordQuery], cold_cache: bool = True) -> MethodRun:
        """Build, update and query one method; the common experiment cell."""
        index, build_seconds = self.build_index(setup)
        update_metrics = self.apply_updates(index, updates)
        query_metrics = self.run_queries(index, queries, cold_cache=cold_cache)
        return MethodRun(
            setup=setup,
            build_seconds=build_seconds,
            long_list_bytes=index.long_list_size_bytes(),
            short_list_bytes=index.index.short_list_size_bytes(),
            update_metrics=update_metrics,
            query_metrics=query_metrics,
        )
