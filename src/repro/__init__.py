"""repro — reproduction of Structured Value Ranking (SVR), ICDE 2005.

This library reimplements, in pure Python, the system described in
"Efficient Inverted Lists and Query Algorithms for Structured Value Ranking in
Update-Intensive Relational Databases" (Guo, Shanmugasundaram, Beyer, Shekita):

* a paged storage engine standing in for BerkeleyDB (:mod:`repro.storage`),
* a minimal relational engine with incrementally maintained materialised views
  (:mod:`repro.relational`),
* a text-management substrate (:mod:`repro.text`),
* the SVR score-specification framework and the inverted-list index family —
  ID, Score, Score-Threshold, Chunk, ID-TermScore, Chunk-TermScore — with their
  query and update algorithms (:mod:`repro.core`),
* synthetic and Internet-Archive-style workload generators (:mod:`repro.workloads`),
* and the experiment harness reproducing every table and figure of the paper's
  evaluation (:mod:`repro.bench`, driven by the ``benchmarks/`` suite).

Quickstart::

    from repro import SVRTextIndex

    index = SVRTextIndex(method="chunk", chunk_ratio=4.0, min_chunk_size=10)
    index.add_document(1, "golden gate bridge documentary", score=120.0)
    index.add_document(2, "amateur film about the golden gate", score=3.0)
    index.finalize()
    index.update_score(2, 500.0)                 # flash crowd!
    top = index.search("golden gate", k=1)
    assert top.results[0].doc_id == 2
"""

from repro.core.indexes.base import QueryResponse, QueryResult, QueryStats
from repro.core.indexes.registry import available_methods, create_index
from repro.core.score_view import ScoreMaintainer
from repro.core.scorespec import ScoreSpec
from repro.core.svr import SVRManager, SVRQueryResult
from repro.core.text_index import SVRTextIndex
from repro.errors import ReproError
from repro.relational.database import Database
from repro.storage.environment import StorageEnvironment

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "ReproError",
    "StorageEnvironment",
    "Database",
    "ScoreSpec",
    "ScoreMaintainer",
    "SVRTextIndex",
    "SVRManager",
    "SVRQueryResult",
    "QueryResult",
    "QueryResponse",
    "QueryStats",
    "create_index",
    "available_methods",
]
