"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
that the package can be installed in editable mode on machines without network
access or the ``wheel`` package (``pip install -e . --no-build-isolation
--no-use-pep517``).
"""

from setuptools import setup

setup()
