#!/usr/bin/env python3
"""Compare all six index methods on the same update-intensive workload.

Builds every method described in the paper over one synthetic corpus, applies
the same score-update stream to each, and prints per-method update cost, query
cost, index size and query-result agreement.  This is a miniature of Figure 7 /
Table 1 that runs in a few seconds; the full reproduction lives in
``benchmarks/``.

Run with:  python examples/method_comparison.py
"""

from __future__ import annotations

import time

from repro import available_methods
from repro.bench.runner import BenchScale, ExperimentRunner, MethodSetup


def options_for(method: str, scale: BenchScale) -> dict:
    """Constructor options appropriate for each method at this corpus scale."""
    if method in ("chunk", "chunk_termscore"):
        return {"chunk_ratio": scale.default_chunk_ratio}
    if method == "score_threshold":
        return {"threshold_ratio": scale.default_threshold_ratio}
    return {}


def main() -> None:
    scale = BenchScale.smoke()
    runner = ExperimentRunner(scale)
    updates = runner.make_updates(num_updates=300)
    queries = runner.make_queries(num_queries=5)

    print(f"Corpus: {scale.corpus.num_docs} documents, "
          f"{scale.corpus.terms_per_doc} terms/doc; "
          f"{len(updates)} score updates, {len(queries)} queries\n")
    header = f"{'method':<18}{'build s':>9}{'upd ms':>9}{'qry ms':>9}{'qry pages':>11}{'long list KB':>14}"
    print(header)
    print("-" * len(header))

    reference_results: list | None = None
    for method in available_methods():
        setup = MethodSetup(method, options_for(method, scale))
        start = time.perf_counter()
        run = runner.measure_method(setup, updates, queries)
        elapsed = time.perf_counter() - start
        print(
            f"{method:<18}{run.build_seconds:>9.2f}"
            f"{run.update_metrics.avg_wall_ms:>9.3f}"
            f"{run.query_metrics.avg_wall_ms:>9.2f}"
            f"{run.query_metrics.avg_pages_read:>11.1f}"
            f"{run.long_list_bytes / 1024:>14.1f}"
            f"   ({elapsed:.1f}s total)"
        )

        # Check that the SVR-only methods agree on the actual result sets.
        if method in ("id", "score", "score_threshold", "chunk"):
            index, _ = runner.build_index(setup)
            runner.apply_updates(index, updates)
            results = [
                index.search(query.keywords, k=query.k).doc_ids() for query in queries
            ]
            if reference_results is None:
                reference_results = results
            else:
                assert results == reference_results, f"{method} diverged from the ID method"

    print("\nAll SVR-only methods returned identical top-k results.")


if __name__ == "__main__":
    main()
