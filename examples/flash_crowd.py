#!/usr/bin/env python3
"""Update-intensive flash-crowd scenario: thousands of score updates between queries.

The paper's motivation is that document scores change "frequently and possibly
dramatically" — flash crowds, award announcements, items suddenly trending.
This example drives a synthetic corpus through an update-heavy workload with a
focus set of newly popular documents, and shows that:

* the Chunk index answers every query according to the *latest* scores,
* most updates touch only the Score table (cheap), and
* the focus-set documents that crossed chunk boundaries are the ones that paid
  for short-list postings.

Run with:  python examples/flash_crowd.py
"""

from __future__ import annotations

from repro import SVRTextIndex
from repro.workloads.synthetic import SyntheticCorpusConfig, generate_corpus
from repro.workloads.updates import UpdateWorkload, UpdateWorkloadConfig


def main() -> None:
    corpus = generate_corpus(
        SyntheticCorpusConfig(
            num_docs=600, terms_per_doc=60, num_distinct_terms=3000, seed=42
        )
    )
    index = SVRTextIndex(method="chunk", chunk_ratio=2.5, min_chunk_size=10)
    for document in corpus.iter_documents():
        index.add_document_terms(document.doc_id, document.terms, document.score)
    index.finalize()

    keywords = corpus.frequent_terms(4)[:2]
    print(f"Query keywords: {keywords}")
    before = index.search(keywords, k=5)
    print("Top-5 before the flash crowd:")
    for result in before.results:
        print(f"  doc {result.doc_id:4d}  score={result.score:10.1f}")

    # An update-intensive phase: 5,000 score updates, 40% of which hit a small
    # "focus set" of newly popular documents whose scores only go up.
    workload = UpdateWorkload(
        UpdateWorkloadConfig(
            num_updates=5000,
            mean_step=500.0,
            focus_set_fraction=0.02,
            focus_update_fraction=0.4,
            focus_direction="increase",
            seed=99,
        ),
        corpus.scores(),
    )
    applied = 0
    for update in workload.generate():
        current = index.current_score(update.doc_id)
        index.update_score(update.doc_id, update.apply_to(current))
        applied += 1

    stats = index.index.update_stats
    print(f"\nApplied {applied} score updates.")
    print(f"  short-list maintenance events : {stats.short_list_updates}")
    print(f"  short-list postings written   : {stats.short_list_postings_written}")
    print(
        f"  -> {100.0 * stats.short_list_updates / applied:.1f}% of updates crossed "
        "more than one chunk boundary; the rest only touched the Score table"
    )

    after = index.search(keywords, k=5)
    print("\nTop-5 after the flash crowd (latest scores):")
    focus = set(workload.focus_set)
    for result in after.results:
        marker = "  <-- focus-set document" if result.doc_id in focus else ""
        print(f"  doc {result.doc_id:4d}  score={result.score:10.1f}{marker}")

    print(
        f"\nQuery scanned {after.stats.postings_scanned} postings over "
        f"{after.stats.chunks_scanned} chunks (stopped early: {after.stats.stopped_early})."
    )


if __name__ == "__main__":
    main()
