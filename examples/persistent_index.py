#!/usr/bin/env python3
"""Durable SVR index: build, commit, crash, and recover.

The paper's experiments ran on a disk-resident BerkeleyDB engine; with
``path=`` the reproduction does too — pages live in one paged file behind a
write-ahead log, and the index survives a process exit (or a crash).  This
example builds a small durable index, commits an update batch, simulates a
crash that loses an uncommitted update, and reopens the index to show that
recovery lands exactly on the committed state.

Run with:  python examples/persistent_index.py
"""

from __future__ import annotations

import shutil
import tempfile

from repro import SVRTextIndex


def main() -> None:
    directory = tempfile.mkdtemp(prefix="svr-durable-")
    path = f"{directory}/index"
    try:
        # Build a durable index: identical API, identical I/O accounting —
        # only the backing store changes.
        index = SVRTextIndex(method="chunk", path=path,
                             chunk_ratio=3.0, min_chunk_size=2)
        movies = {
            1: ("American Thrift, crossing the golden gate bridge", 870.0),
            2: ("Amateur film about the golden gate and the fog", 12.0),
            3: ("Golden sunset over the gate tower, restored footage", 95.0),
        }
        for doc_id, (description, popularity) in movies.items():
            index.add_document(doc_id, description, score=popularity)
        index.finalize()

        # A batch of score updates, group-committed in one fsync.
        index.apply_score_updates([(2, 990.0)])
        index.commit()

        # One more update that never commits — then the process "dies".
        index.update_score(3, 5000.0)
        index.crash()

        # Recovery replays the write-ahead log to the last committed batch.
        with SVRTextIndex.open(path) as recovered:
            print("After crash recovery:")
            print(f"  movie 2 score: {recovered.current_score(2)}  "
                  "(committed update survived)")
            print(f"  movie 3 score: {recovered.current_score(3)}  "
                  "(uncommitted update rolled away)")
            print("Ranking for 'golden gate':")
            for result in recovered.search("golden gate", k=3).results:
                print(f"  movie {result.doc_id}   score={result.score:8.1f}")
        # close() checkpointed on the way out: the WAL is folded into the
        # paged file and the next open needs no replay at all.
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
