#!/usr/bin/env python3
"""The full §3 pipeline over an Internet-Archive-style relational database.

This example mirrors the paper's running example end to end:

* three base tables — ``movies(movie_id, title, description)``,
  ``reviews(review_id, movie_id, rating)`` and
  ``statistics(movie_id, visits, downloads)``;
* the SVR specification ``Agg(S1,S2,S3) = avg_rating*100 + visits/2 + downloads``
  expressed as SQL-bodied functions over those tables;
* an incrementally maintained Score view feeding score updates into a Chunk
  index, so that inserting a new review or bumping a visit counter immediately
  changes the keyword-search ranking.

Run with:  python examples/internet_archive.py
"""

from __future__ import annotations

from repro import Database, SVRManager
from repro.workloads.archive import ArchiveConfig, InternetArchiveDataset


def main() -> None:
    database = Database()
    dataset = InternetArchiveDataset(ArchiveConfig(num_movies=120, seed=3))
    dataset.populate(database)

    manager = SVRManager(database)
    spec = dataset.build_score_spec(database)
    manager.create_text_index(
        name="movie_text",
        table="movies",
        text_column="description",
        spec=spec,
        method="chunk",
        score_dependencies=dataset.score_dependencies(),
        chunk_ratio=3.0,
        min_chunk_size=5,
    )

    print("Top movies for 'golden gate' (by structured values):")
    for result in manager.search("movie_text", "golden gate", k=5):
        title = result.row["title"] if result.row else "?"
        print(f"  movie {result.doc_id:4d}  score={result.score:12.1f}  {title}")

    # A burst of activity on one of the lower-ranked movies: new 5-star
    # reviews and a spike in visits.  Both flow through the materialised Score
    # view into the index without touching the long inverted lists.
    target = manager.search("movie_text", "golden gate", k=5)[-1].doc_id
    reviews = database.table("reviews")
    next_review_id = max(row["review_id"] for row in reviews.scan()) + 1
    for offset in range(3):
        reviews.insert(
            {"review_id": next_review_id + offset, "movie_id": target, "rating": 5.0}
        )
    statistics = database.table("statistics")
    current = statistics.get(target)
    statistics.update(target, {"visits": current["visits"] + 200_000})

    print(f"\nAfter new reviews and a visit spike for movie {target}:")
    results = manager.search("movie_text", "golden gate", k=5)
    for result in results:
        title = result.row["title"] if result.row else "?"
        marker = "  <-- boosted" if result.doc_id == target else ""
        print(f"  movie {result.doc_id:4d}  score={result.score:12.1f}  {title}{marker}")

    assert results[0].doc_id == target, "the boosted movie must now rank first"
    print("\nOK: structured updates re-ranked the keyword search results.")


if __name__ == "__main__":
    main()
