#!/usr/bin/env python3
"""Quickstart: Structured Value Ranking over a handful of documents.

This is the paper's Figure 1 scenario in miniature: two movies mention
"golden gate", and traditional TF-IDF ranking cannot tell them apart.  SVR
ranks them by structured values (here, a popularity score), and the Chunk
index keeps the ranking correct while those values change.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SVRTextIndex


def main() -> None:
    # Build an SVR text index using the Chunk method (the paper's recommended
    # index).  The chunk ratio / minimum chunk size are tuned for a tiny
    # collection; see examples/method_comparison.py for the other methods.
    index = SVRTextIndex(method="chunk", chunk_ratio=3.0, min_chunk_size=2)

    movies = {
        1: ("American Thrift, a documentary crossing the golden gate bridge", 870.0),
        2: ("Amateur film about the golden gate and the fog", 12.0),
        3: ("Pacific harbor newsreel, sailors and ferries", 150.0),
        4: ("Golden sunset over the gate tower, restored footage", 95.0),
    }
    for doc_id, (description, popularity) in movies.items():
        index.add_document(doc_id, description, score=popularity)
    index.finalize()

    print("Initial ranking for 'golden gate':")
    for result in index.search("golden gate", k=3).results:
        print(f"  movie {result.doc_id}   score={result.score:10.1f}")

    # A flash crowd discovers the amateur film: its popularity explodes.
    # With SVR the new score takes effect immediately; the inverted lists are
    # not rewritten (only the Score table and, if the document crosses more
    # than one chunk boundary, the short lists).
    index.update_score(2, 5_000.0)

    print("\nAfter the flash crowd (movie 2 score -> 5000):")
    response = index.search("golden gate", k=3)
    for result in response.results:
        print(f"  movie {result.doc_id}   score={result.score:10.1f}")

    stats = response.stats
    print(
        f"\nQuery statistics: {stats.postings_scanned} postings scanned, "
        f"{stats.chunks_scanned} chunks, stopped early: {stats.stopped_early}"
    )

    assert response.results[0].doc_id == 2, "the flash-crowd movie must rank first"
    print("\nOK: the ranking follows the latest structured values.")


if __name__ == "__main__":
    main()
